"""Parallel application patterns (paper §I's "variety of parallel
application types and data sharing methods": task groups, pipelines,
client/server, message passing, shared memory).

Each builder spawns behavioural threads on the caller's cores and
returns a result object that fills in as the simulation runs.  Patterns
are deterministic: given the same cores and parameters they produce the
same schedule, timing and traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.channels import AppChannel
from repro.xs1.behavioral import (
    BehavioralThread,
    CheckCt,
    Compute,
    RecvWord,
    SendCt,
    SendWord,
)
from repro.xs1.core import XCore
from repro.xs1.isa import CT_END

#: Sentinel item value signalling end-of-stream inside patterns.
_STOP = 0xFFFF_FFFF


def send_packet(chanend, *words):
    """Send words as one packet: payload then the route-closing END.

    Patterns use packet mode rather than held-open circuits so that
    channels sharing a physical link interleave instead of starving each
    other (paper §V.B).
    """
    for word in words:
        yield SendWord(chanend, word)
    yield SendCt(chanend, CT_END)


def recv_packet_word(chanend):
    """Receive a single-word packet; returns the word."""
    value = yield RecvWord(chanend)
    yield CheckCt(chanend, CT_END)
    return value


@dataclass
class PatternResult:
    """Completion record of a pattern run."""

    name: str
    items: int
    outputs: list[int] = field(default_factory=list)
    finish_times_ps: list[int] = field(default_factory=list)
    channels: list[AppChannel] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        """True when every expected item has been produced."""
        return len(self.outputs) >= self.items

    @property
    def makespan_ps(self) -> int:
        """Time of the last completed item."""
        return max(self.finish_times_ps) if self.finish_times_ps else 0

    @property
    def bits_moved(self) -> int:
        """Total channel traffic of the pattern."""
        return sum(channel.bits_moved for channel in self.channels)


def build_pipeline(
    cores: list[XCore],
    items: int,
    compute_per_stage: int,
    name: str = "pipeline",
) -> PatternResult:
    """A processing pipeline: one stage per core.

    The first core sources ``items`` integers, each stage adds
    ``compute_per_stage`` instructions of work and increments the value,
    and the final stage records outputs and completion times.
    """
    if len(cores) < 2:
        raise ValueError("a pipeline needs at least two cores")
    if items < 1:
        raise ValueError("need at least one item")
    result = PatternResult(name=name, items=items)
    channels = [
        AppChannel.between(cores[i], cores[i + 1]) for i in range(len(cores) - 1)
    ]
    result.channels = channels
    sim = cores[0].sim

    def source():
        for i in range(items):
            yield Compute(compute_per_stage)
            yield from send_packet(channels[0].a, i)

    def stage(index):
        def body():
            for _ in range(items):
                value = yield from recv_packet_word(channels[index - 1].b)
                yield Compute(compute_per_stage)
                yield from send_packet(channels[index].a, value + 1)
        return body

    def sink():
        for _ in range(items):
            value = yield from recv_packet_word(channels[-1].b)
            yield Compute(compute_per_stage)
            result.outputs.append(value + 1)
            result.finish_times_ps.append(sim.now)

    BehavioralThread(cores[0], source(), name=f"{name}.source")
    for index in range(1, len(cores) - 1):
        BehavioralThread(cores[index], stage(index)(), name=f"{name}.s{index}")
    BehavioralThread(cores[-1], sink(), name=f"{name}.sink")
    return result


def build_task_farm(
    master: XCore,
    workers: list[XCore],
    items: int,
    compute_per_item: int,
    name: str = "farm",
) -> PatternResult:
    """A master/worker task farm with round-robin distribution."""
    if not workers:
        raise ValueError("a farm needs at least one worker")
    if items < 1:
        raise ValueError("need at least one item")
    result = PatternResult(name=name, items=items)
    channels = [AppChannel.between(master, worker) for worker in workers]
    result.channels = channels
    sim = master.sim
    per_worker = [0] * len(workers)
    for i in range(items):
        per_worker[i % len(workers)] += 1

    def master_body():
        # Interleave sends and receives round-robin so channel buffers
        # stay shallow regardless of item count.
        outstanding = [0] * len(workers)
        sent = received = 0
        while received < items:
            if sent < items:
                index = sent % len(workers)
                yield from send_packet(channels[index].a, sent)
                outstanding[index] += 1
                sent += 1
            if sent == items or max(outstanding) >= 2:
                index = received % len(workers)
                if outstanding[index] > 0:
                    value = yield from recv_packet_word(channels[index].a)
                    outstanding[index] -= 1
                    result.outputs.append(value)
                    result.finish_times_ps.append(sim.now)
                    received += 1

    def worker_body(index):
        def body():
            for _ in range(per_worker[index]):
                task = yield from recv_packet_word(channels[index].b)
                yield Compute(compute_per_item)
                yield from send_packet(channels[index].b, task * 2)
        return body

    BehavioralThread(master, master_body(), name=f"{name}.master")
    for index, worker in enumerate(workers):
        BehavioralThread(worker, worker_body(index)(), name=f"{name}.w{index}")
    return result


def build_client_server(
    server: XCore,
    clients: list[XCore],
    requests_per_client: int,
    compute_per_request: int,
    name: str = "client-server",
) -> PatternResult:
    """Clients issue requests; one server answers them in arrival order.

    The server polls its client channels round-robin — a deterministic
    stand-in for the event-driven select of real XS1 code.
    """
    if not clients:
        raise ValueError("need at least one client")
    total = requests_per_client * len(clients)
    result = PatternResult(name=name, items=total)
    channels = [AppChannel.between(server, client) for client in clients]
    result.channels = channels
    sim = server.sim

    def server_body():
        remaining = [requests_per_client] * len(clients)
        while sum(remaining) > 0:
            for index, channel in enumerate(channels):
                if remaining[index] == 0:
                    continue
                request = yield from recv_packet_word(channel.a)
                yield Compute(compute_per_request)
                yield from send_packet(channel.a, request + 1000)
                remaining[index] -= 1

    def client_body(index):
        def body():
            for r in range(requests_per_client):
                yield from send_packet(channels[index].b, index * 100 + r)
                response = yield from recv_packet_word(channels[index].b)
                result.outputs.append(response)
                result.finish_times_ps.append(sim.now)
        return body

    BehavioralThread(server, server_body(), name=f"{name}.server")
    for index, client in enumerate(clients):
        BehavioralThread(client, client_body(index)(), name=f"{name}.c{index}")
    return result


def build_message_ring(
    cores: list[XCore],
    rounds: int,
    compute_per_hop: int = 0,
    name: str = "ring",
) -> PatternResult:
    """Message passing around a ring of cores (a tasks-group exemplar).

    A token circulates ``rounds`` times; every hop may add compute.  The
    result's outputs are the token value after each full round.
    """
    if len(cores) < 2:
        raise ValueError("a ring needs at least two cores")
    result = PatternResult(name=name, items=rounds)
    channels = [
        AppChannel.between(cores[i], cores[(i + 1) % len(cores)])
        for i in range(len(cores))
    ]
    result.channels = channels
    sim = cores[0].sim

    def head():
        value = 0
        for _ in range(rounds):
            yield from send_packet(channels[0].a, value + 1)
            value = yield from recv_packet_word(channels[-1].b)
            result.outputs.append(value)
            result.finish_times_ps.append(sim.now)

    def relay(index):
        def body():
            for _ in range(rounds):
                value = yield from recv_packet_word(channels[index - 1].b)
                if compute_per_hop:
                    yield Compute(compute_per_hop)
                yield from send_packet(channels[index].a, value + 1)
        return body

    BehavioralThread(cores[0], head(), name=f"{name}.head")
    for index in range(1, len(cores)):
        BehavioralThread(cores[index], relay(index)(), name=f"{name}.n{index}")
    return result


def build_bsp(
    cores: list[XCore],
    supersteps: int,
    compute_per_step: int,
    name: str = "bsp",
) -> PatternResult:
    """A bulk-synchronous task group: compute, barrier, repeat.

    The paper's "groups of tasks" style: every worker computes
    ``compute_per_step`` instructions, then synchronises at a barrier
    built from channels (worker -> coordinator -> worker), for
    ``supersteps`` rounds.  Outputs record each worker's final round
    count; finish times give the barrier-exit time of each superstep.
    """
    if len(cores) < 2:
        raise ValueError("a task group needs a coordinator and >= 1 worker")
    if supersteps < 1:
        raise ValueError("need at least one superstep")
    coordinator, workers = cores[0], cores[1:]
    result = PatternResult(name=name, items=supersteps)
    channels = [AppChannel.between(coordinator, worker) for worker in workers]
    result.channels = channels
    sim = coordinator.sim
    rounds_done = [0] * len(workers)

    def coordinator_body():
        for _ in range(supersteps):
            # Gather: every worker reports in...
            for channel in channels:
                yield from recv_packet_word(channel.a)
            # ...then release: broadcast the barrier exit.
            for channel in channels:
                yield from send_packet(channel.a, 1)
            result.finish_times_ps.append(sim.now)
        # Final gather: each worker reports its completed round count.
        for channel in channels:
            result.outputs.append((yield from recv_packet_word(channel.a)))

    def worker_body(index):
        def body():
            for _ in range(supersteps):
                yield Compute(compute_per_step)
                yield from send_packet(channels[index].b, index)
                yield from recv_packet_word(channels[index].b)
                rounds_done[index] += 1
            yield from send_packet(channels[index].b, rounds_done[index])
        return body

    BehavioralThread(coordinator, coordinator_body(), name=f"{name}.coord")
    for index, worker in enumerate(workers):
        BehavioralThread(worker, worker_body(index)(), name=f"{name}.w{index}")
    return result


#: Shared-memory op codes (top bit of the request word).
_OP_READ = 0
_OP_WRITE = 1


@dataclass
class SharedMemoryServer:
    """Software shared memory: one core serves loads/stores over channels.

    The paper lists shared memory among Swallow's supported data-sharing
    methods; with no coherent interconnect it is built exactly like this —
    a memory-owning server and a message protocol.
    """

    core: XCore
    channels: list[AppChannel] = field(default_factory=list)
    requests_served: int = 0

    def serve(self, total_requests: int) -> None:
        """Spawn the server loop for a fixed number of requests."""
        def body():
            served = 0
            while served < total_requests:
                for channel in self.channels:
                    if served >= total_requests:
                        break
                    request = yield RecvWord(channel.a)
                    op = (request >> 31) & 1
                    address = request & 0x7FFF_FFFF
                    if op == _OP_WRITE:
                        value = yield RecvWord(channel.a)
                        yield CheckCt(channel.a, CT_END)
                        self.core.memory.store_word(address, value)
                        yield from send_packet(channel.a, 0)   # write ack
                    else:
                        yield CheckCt(channel.a, CT_END)
                        yield from send_packet(
                            channel.a, self.core.memory.load_word(address)
                        )
                    served += 1
                    self.requests_served += 1

        BehavioralThread(self.core, body(), name="shmem.server")

    def connect(self, client: XCore) -> AppChannel:
        """Attach a client core; returns its channel."""
        channel = AppChannel.between(self.core, client)
        self.channels.append(channel)
        return channel


def shmem_read(channel: AppChannel, address: int):
    """Client-side read: yield ops; the final yield returns the value."""
    yield from send_packet(channel.b, (_OP_READ << 31) | address)
    value = yield from recv_packet_word(channel.b)
    return value


def shmem_write(channel: AppChannel, address: int, value: int):
    """Client-side write (acknowledged)."""
    yield from send_packet(channel.b, (_OP_WRITE << 31) | address, value)
    yield from recv_packet_word(channel.b)
