"""Application substrate: channels, parallel patterns, placement."""

from repro.apps.channels import AppChannel
from repro.apps.kernels import (
    Kernel,
    bubble_sort,
    checksum32,
    default_suite,
    dot_product,
    fibonacci,
    matrix_multiply,
    memcpy_words,
    run_kernel,
    vector_scale,
)
from repro.apps.mapping import Placement, communication_scope, place
from repro.apps.patterns import (
    PatternResult,
    SharedMemoryServer,
    build_bsp,
    build_client_server,
    build_message_ring,
    build_pipeline,
    build_task_farm,
    shmem_read,
    shmem_write,
)
from repro.apps.reliable import (
    ReliableChannel,
    ReliableChannelError,
    ReliableStats,
    RetryExhaustedError,
    frame_checksum,
)

__all__ = [
    "AppChannel",
    "Kernel",
    "PatternResult",
    "ReliableChannel",
    "ReliableChannelError",
    "ReliableStats",
    "RetryExhaustedError",
    "frame_checksum",
    "bubble_sort",
    "build_bsp",
    "checksum32",
    "default_suite",
    "dot_product",
    "fibonacci",
    "matrix_multiply",
    "memcpy_words",
    "run_kernel",
    "vector_scale",
    "Placement",
    "SharedMemoryServer",
    "build_client_server",
    "build_message_ring",
    "build_pipeline",
    "build_task_farm",
    "communication_scope",
    "place",
    "shmem_read",
    "shmem_write",
]
