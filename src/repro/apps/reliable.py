"""Reliable channels: delivery guarantees over a lossy fabric.

Plain XS1 channels assume the links underneath never lose a token.  A
fault campaign (:mod:`repro.faults`) breaks that assumption: flaky links
drop or corrupt payload tokens, and forced link failures sever routes
mid-packet.  :class:`ReliableChannel` restores exactly-once, in-order
word delivery on top of ordinary chanend operations with a classic
stop-and-wait protocol:

* every payload word travels in a 3-word frame ``[seq, value, checksum]``
  closed by END;
* the receiver validates length and checksum, acknowledges every valid
  frame (including duplicates, whose earlier ack may have been lost),
  and deduplicates by sequence number;
* the sender retransmits on ack timeout or on a malformed ack, with
  exponential backoff, up to ``max_retries`` attempts.

Retransmissions are real traffic: they cross the same switches and
links, so their time and energy land in the normal accounting.  The
channel additionally tracks the retransmitted wire bits so a campaign
report can attribute the *retry share* of link energy
(:meth:`ReliableChannel.retry_energy_j`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.channels import AppChannel
from repro.network.token import HEADER_TOKENS, TOKEN_BITS, TOKENS_PER_WORD
from repro.xs1.behavioral import RecvPacket, SendCt, SendWord, Sleep
from repro.xs1.chanend import Chanend
from repro.xs1.core import XCore
from repro.xs1.isa import CT_END

#: Payload words per data frame: sequence number, value, checksum.
FRAME_WORDS = 3

#: Wire tokens of one data-frame transmission (route header + payload
#: tokens + closing END) — used to account retransmitted bits.
FRAME_WIRE_TOKENS = HEADER_TOKENS + FRAME_WORDS * TOKENS_PER_WORD + 1

#: Ack payload is ``ACK_MAGIC ^ seq`` so a stale or corrupted ack can
#: never be mistaken for the one the sender is waiting on.
ACK_MAGIC = 0xA5C3_9D1E


class ReliableChannelError(RuntimeError):
    """A reliable transfer failed permanently."""


class RetryExhaustedError(ReliableChannelError):
    """A frame's retry budget ran out without an acknowledgement.

    Raised instead of stalling silently: even on a permanently severed
    route (where plain sends would block forever) the sender's
    per-operation send deadlines keep the retry loop turning until the
    budget is spent, and the failure surfaces as this typed error.
    """

    def __init__(self, seq: int, attempts: int):
        super().__init__(f"frame {seq}: no ack after {attempts} attempts")
        self.seq = seq
        self.attempts = attempts


def frame_checksum(seq: int, value: int) -> int:
    """A deterministic 32-bit mix of sequence number and payload."""
    mixed = (seq * 0x9E37_79B1) ^ ((value & 0xFFFF_FFFF) * 0x85EB_CA6B)
    mixed &= 0xFFFF_FFFF
    return mixed ^ (mixed >> 16)


def _word(token_values: list[int]) -> int:
    """Reassemble four 8-bit token values (MSB first) into a word."""
    return (
        (token_values[0] << 24) | (token_values[1] << 16)
        | (token_values[2] << 8) | token_values[3]
    )


@dataclass
class ReliableStats:
    """Protocol counters of one reliable channel (both directions)."""

    frames_sent: int = 0
    acked: int = 0
    delivered: int = 0
    retries: int = 0
    ack_timeouts: int = 0
    bad_acks: int = 0
    invalid_frames: int = 0
    checksum_failures: int = 0
    duplicates: int = 0
    recv_timeouts: int = 0
    #: Sends abandoned because the transmit buffer never drained within
    #: the send deadline (a severed route ahead).
    send_timeouts: int = 0
    #: Estimated wire bits of retransmitted data frames (for energy
    #: attribution; the first transmission of each frame is not a retry).
    retry_bits: int = 0

    def as_dict(self) -> dict[str, int]:
        """Counters as a plain dict (stable key order)."""
        return {
            "frames_sent": self.frames_sent,
            "acked": self.acked,
            "delivered": self.delivered,
            "retries": self.retries,
            "ack_timeouts": self.ack_timeouts,
            "bad_acks": self.bad_acks,
            "invalid_frames": self.invalid_frames,
            "checksum_failures": self.checksum_failures,
            "duplicates": self.duplicates,
            "recv_timeouts": self.recv_timeouts,
            "send_timeouts": self.send_timeouts,
            "retry_bits": self.retry_bits,
        }


@dataclass
class ReliableChannel:
    """Stop-and-wait reliable word transport over an :class:`AppChannel`.

    The ``send``/``recv`` methods are generators meant to be driven with
    ``yield from`` inside behavioural-thread bodies, exactly like the
    raw operations they wrap::

        def producer():
            for i in range(100):
                yield from rchan.send(i)

        def consumer():
            for _ in range(100):
                value = yield from rchan.recv()
    """

    channel: AppChannel
    #: Core cycles the sender waits for an ack before retransmitting.
    ack_timeout_cycles: int = 20_000
    #: Retransmissions allowed per frame before giving up.
    max_retries: int = 100
    #: Optional receive-side deadline per packet; ``None`` waits forever
    #: (END tokens always arrive on merely *flaky* links — only a severed
    #: route can strand the receiver, and retransmission resolves that).
    recv_timeout_cycles: int | None = None
    #: Documented ceiling of the exponential retransmission backoff,
    #: in core cycles; also the per-operation send deadline, so a
    #: permanently severed route turns into counted retries and
    #: eventually :class:`RetryExhaustedError` instead of a silent
    #: stall.  ``0`` (the default) means 16x ``ack_timeout_cycles``.
    max_backoff_cycles: int = 0
    stats: ReliableStats = field(default_factory=ReliableStats)
    _tx_seq: int = 0
    _rx_seq: int = 0

    def __post_init__(self) -> None:
        if self.max_backoff_cycles <= 0:
            self.max_backoff_cycles = 16 * self.ack_timeout_cycles

    @classmethod
    def between(cls, core_a: XCore, core_b: XCore, **kwargs) -> "ReliableChannel":
        """Allocate a channel between two cores; ``a`` sends, ``b`` receives."""
        return cls(channel=AppChannel.between(core_a, core_b), **kwargs)

    # -- sender side --------------------------------------------------------

    @property
    def tx(self) -> Chanend:
        """The sending side's chanend."""
        return self.channel.a

    @property
    def rx(self) -> Chanend:
        """The receiving side's chanend."""
        return self.channel.b

    def send(self, value: int):
        """Deliver one word reliably (generator; drive with ``yield from``)."""
        seq = self._tx_seq
        self._tx_seq += 1
        value &= 0xFFFF_FFFF
        check = frame_checksum(seq, value)
        expected_ack = (ACK_MAGIC ^ seq) & 0xFFFF_FFFF
        backoff = self.ack_timeout_cycles
        attempts = 0
        while True:
            if attempts > 0:
                self.stats.retries += 1
                self.stats.retry_bits += FRAME_WIRE_TOKENS * TOKEN_BITS
                # Charge the retry to the sending thread's causal span
                # too, so per-span ledgers expose fault overhead.
                thread = self.tx.core.current_thread
                if thread is not None and thread.span is not None:
                    thread.span.retry_bits += FRAME_WIRE_TOKENS * TOKEN_BITS
            attempts += 1
            self.stats.frames_sent += 1
            # Every operation carries a send deadline: on a severed
            # route the transmit buffer never drains and an undeadlined
            # send would park the thread forever with the retry counter
            # frozen mid-loop.
            sent = True
            for word in (seq & 0xFFFF_FFFF, value, check):
                if not (yield SendWord(
                    self.tx, word, timeout_cycles=self.max_backoff_cycles
                )):
                    sent = False
                    break
            if sent:
                sent = yield SendCt(
                    self.tx, CT_END, timeout_cycles=self.max_backoff_cycles
                )
            if sent:
                ack = yield RecvPacket(
                    self.tx, timeout_cycles=self.ack_timeout_cycles
                )
            else:
                self.stats.send_timeouts += 1
                ack = None
            if (
                ack is not None
                and len(ack) == TOKENS_PER_WORD
                and _word(ack) == expected_ack
            ):
                self.stats.acked += 1
                return
            if not sent:
                pass                              # already counted above
            elif ack is None:
                self.stats.ack_timeouts += 1
            else:
                self.stats.bad_acks += 1
            if attempts > self.max_retries:
                raise RetryExhaustedError(seq, attempts)
            yield Sleep(backoff)
            backoff = min(backoff * 2, self.max_backoff_cycles)

    # -- receiver side ------------------------------------------------------

    def _parse_frame(self, tokens: list[int]) -> tuple[int, int] | None:
        """Validate a received packet; ``(seq, value)`` or ``None``."""
        if len(tokens) != FRAME_WORDS * TOKENS_PER_WORD:
            # Truncated by token loss, or a partial frame fused with
            # its own retransmission after a severed route.
            self.stats.invalid_frames += 1
            return None
        seq = _word(tokens[0:4])
        value = _word(tokens[4:8])
        if _word(tokens[8:12]) != frame_checksum(seq, value):
            self.stats.checksum_failures += 1
            return None
        return seq, value

    def _send_ack(self, seq: int):
        """Acknowledge ``seq`` with send deadlines (never stalls)."""
        sent = yield SendWord(
            self.rx, (ACK_MAGIC ^ seq) & 0xFFFF_FFFF,
            timeout_cycles=self.max_backoff_cycles,
        )
        if sent:
            yield SendCt(
                self.rx, CT_END, timeout_cycles=self.max_backoff_cycles
            )
        else:
            self.stats.send_timeouts += 1

    def recv(self):
        """Receive the next in-order word (generator; ``yield from``)."""
        while True:
            tokens = yield RecvPacket(
                self.rx, timeout_cycles=self.recv_timeout_cycles
            )
            if tokens is None:
                self.stats.recv_timeouts += 1
                continue
            frame = self._parse_frame(tokens)
            if frame is None:
                continue
            seq, value = frame
            # Ack every valid frame — a duplicate means our earlier ack
            # was lost or arrived after the sender's deadline.  Ack
            # sends carry deadlines too: a severed ack direction must
            # not strand the receiver (the sender retries, and a later
            # ack can still get through).
            yield from self._send_ack(seq)
            if seq != self._rx_seq:
                self.stats.duplicates += 1
                continue
            self._rx_seq += 1
            self.stats.delivered += 1
            return value

    def drain(self, quiet_cycles: int | None = None):
        """Service late retransmissions until the sender goes quiet.

        Call after the last expected :meth:`recv` (``yield from
        ch.drain()``).  If the final ack was lost, the sender is still
        retransmitting that frame; exiting without re-acking would
        strand it (and wedge the route once the receive buffer fills).
        The default quiet window is four times the sender's maximum
        backoff, so it comfortably outlasts any pending retry.
        """
        window = quiet_cycles or 64 * self.ack_timeout_cycles
        while True:
            tokens = yield RecvPacket(self.rx, timeout_cycles=window)
            if tokens is None:
                return
            frame = self._parse_frame(tokens)
            if frame is None:
                continue
            seq, _value = frame
            yield from self._send_ack(seq)
            self.stats.duplicates += 1

    # -- accounting ---------------------------------------------------------

    def retry_energy_j(self, accounting) -> float:
        """Link energy attributable to this channel's retransmissions.

        Retransmitted frames are ordinary traffic, already inside the
        ledger's link total; this prorates that total by the channel's
        share of retransmitted wire bits.
        """
        accounting.update()
        fabric = accounting.fabric
        if fabric is None or self.stats.retry_bits == 0:
            return 0.0
        total_bits = sum(link.bits_carried for link in fabric.links)
        if total_bits == 0:
            return 0.0
        return accounting.link_energy_j * self.stats.retry_bits / total_bits
