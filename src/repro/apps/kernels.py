"""Assembly benchmark kernels.

Small, real XS1-subset programs — the kind of code the paper's energy
model was profiled on (ref. [4]).  Each kernel has a distinct
instruction mix, so running them through the instruction-energy model
shows the paper's point that energy is "dependent upon the operations
[instructions] perform".

Every builder returns a :class:`Kernel`: the assembled program, where it
reads inputs and writes results in SRAM, and a pure-Python reference
implementation used by the tests and the verification helper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.xs1.assembler import Program, assemble
from repro.xs1.core import XCore
from repro.xs1.memory import Sram

#: SRAM layout used by all kernels.
INPUT_A = 0x1000
INPUT_B = 0x2000
OUTPUT = 0x3000


@dataclass(frozen=True)
class Kernel:
    """One benchmark kernel."""

    name: str
    program: Program
    #: Words of output at OUTPUT.
    output_words: int
    #: reference(memory) -> expected output words.
    reference: Callable[[Sram], list[int]]

    def load_inputs(self, core: XCore, a: list[int], b: list[int] | None = None) -> None:
        """Write input vectors into the kernel's SRAM regions."""
        for offset, value in enumerate(a):
            core.memory.store_word(INPUT_A + 4 * offset, value)
        for offset, value in enumerate(b or []):
            core.memory.store_word(INPUT_B + 4 * offset, value)

    def read_output(self, core: XCore) -> list[int]:
        """The kernel's result words."""
        return [
            core.memory.load_word(OUTPUT + 4 * i) for i in range(self.output_words)
        ]


def memcpy_words(n: int) -> Kernel:
    """Copy ``n`` words from INPUT_A to OUTPUT."""
    program = assemble(f"""
        .equ N, {n}
        start:
            ldc r0, {INPUT_A}
            ldc r1, {OUTPUT}
            ldc r2, N
        loop:
            ldw r3, r0, 0
            stw r3, r1, 0
            addi r0, r0, 4
            addi r1, r1, 4
            subi r2, r2, 1
            bt r2, loop
            freet
    """, name=f"memcpy[{n}]")

    def reference(memory: Sram) -> list[int]:
        return [memory.load_word(INPUT_A + 4 * i) for i in range(n)]

    return Kernel("memcpy", program, n, reference)


def dot_product(n: int) -> Kernel:
    """OUTPUT[0] = sum(A[i] * B[i])."""
    program = assemble(f"""
        .equ N, {n}
        start:
            ldc r0, {INPUT_A}
            ldc r1, {INPUT_B}
            ldc r2, N
            ldc r3, 0
        loop:
            ldw r4, r0, 0
            ldw r5, r1, 0
            mul r6, r4, r5
            add r3, r3, r6
            addi r0, r0, 4
            addi r1, r1, 4
            subi r2, r2, 1
            bt r2, loop
            ldc r7, {OUTPUT}
            stw r3, r7, 0
            freet
    """, name=f"dot[{n}]")

    def reference(memory: Sram) -> list[int]:
        total = 0
        for i in range(n):
            total += memory.load_word(INPUT_A + 4 * i) * memory.load_word(
                INPUT_B + 4 * i
            )
        return [total & 0xFFFF_FFFF]

    return Kernel("dot-product", program, 1, reference)


def vector_scale(n: int, factor: int) -> Kernel:
    """OUTPUT[i] = A[i] * factor."""
    program = assemble(f"""
        .equ N, {n}
        .equ K, {factor}
        start:
            ldc r0, {INPUT_A}
            ldc r1, {OUTPUT}
            ldc r2, N
            ldc r7, K
        loop:
            ldw r3, r0, 0
            mul r3, r3, r7
            stw r3, r1, 0
            addi r0, r0, 4
            addi r1, r1, 4
            subi r2, r2, 1
            bt r2, loop
            freet
    """, name=f"scale[{n}]")

    def reference(memory: Sram) -> list[int]:
        return [
            (memory.load_word(INPUT_A + 4 * i) * factor) & 0xFFFF_FFFF
            for i in range(n)
        ]

    return Kernel("vector-scale", program, n, reference)


def checksum32(n: int) -> Kernel:
    """A rotate-xor checksum over ``n`` words (shift/logic heavy)."""
    program = assemble(f"""
        .equ N, {n}
        start:
            ldc r0, {INPUT_A}
            ldc r2, N
            ldc r3, 0          # accumulator
            ldc r8, 5          # rotate amount
            ldc r9, 27         # 32 - rotate
        loop:
            ldw r4, r0, 0
            shl r5, r3, r8
            shr r6, r3, r9
            or r3, r5, r6      # rotl(acc, 5)
            xor r3, r3, r4
            addi r0, r0, 4
            subi r2, r2, 1
            bt r2, loop
            ldc r7, {OUTPUT}
            stw r3, r7, 0
            freet
    """, name=f"checksum[{n}]")

    def reference(memory: Sram) -> list[int]:
        acc = 0
        for i in range(n):
            acc = ((acc << 5) | (acc >> 27)) & 0xFFFF_FFFF
            acc ^= memory.load_word(INPUT_A + 4 * i)
        return [acc]

    return Kernel("checksum32", program, 1, reference)


def bubble_sort(n: int) -> Kernel:
    """Sort ``n`` words of INPUT_A ascending into OUTPUT (copy + sort)."""
    program = assemble(f"""
        .equ N, {n}
        start:
            # copy A -> OUTPUT
            ldc r0, {INPUT_A}
            ldc r1, {OUTPUT}
            ldc r2, N
        copy:
            ldw r3, r0, 0
            stw r3, r1, 0
            addi r0, r0, 4
            addi r1, r1, 4
            subi r2, r2, 1
            bt r2, copy
            # bubble sort OUTPUT in place
            ldc r10, N
            subi r10, r10, 1   # passes remaining
        outer:
            bf r10, done
            ldc r0, {OUTPUT}
            mov r2, r10
        inner:
            ldw r3, r0, 0
            ldw r4, r0, 1
            lsu r5, r4, r3     # r4 < r3 ? swap
            bf r5, no_swap
            stw r4, r0, 0
            stw r3, r0, 1
        no_swap:
            addi r0, r0, 4
            subi r2, r2, 1
            bt r2, inner
            subi r10, r10, 1
            bu outer
        done:
            freet
    """, name=f"sort[{n}]")

    def reference(memory: Sram) -> list[int]:
        return sorted(memory.load_word(INPUT_A + 4 * i) for i in range(n))

    return Kernel("bubble-sort", program, n, reference)


def matrix_multiply(n: int) -> Kernel:
    """OUTPUT = A x B for n x n row-major word matrices."""
    program = assemble(f"""
        .equ N, {n}
        start:
            ldc r10, 0          # i
        row:
            ldc r11, 0          # j
        col:
            ldc r3, 0           # acc
            ldc r2, 0           # k
        mac:
            # r4 = A[i*N + k]
            ldc r5, N
            mul r6, r10, r5
            add r6, r6, r2
            shli r6, r6, 2
            ldc r7, {INPUT_A}
            add r6, r6, r7
            ldw r4, r6, 0
            # r8 = B[k*N + j]
            mul r6, r2, r5
            add r6, r6, r11
            shli r6, r6, 2
            ldc r7, {INPUT_B}
            add r6, r6, r7
            ldw r8, r6, 0
            mul r9, r4, r8
            add r3, r3, r9
            addi r2, r2, 1
            lsu r6, r2, r5
            bt r6, mac
            # OUTPUT[i*N + j] = acc
            mul r6, r10, r5
            add r6, r6, r11
            shli r6, r6, 2
            ldc r7, {OUTPUT}
            add r6, r6, r7
            stw r3, r6, 0
            addi r11, r11, 1
            lsu r6, r11, r5
            bt r6, col
            addi r10, r10, 1
            lsu r6, r10, r5
            bt r6, row
            freet
    """, name=f"matmul[{n}]")

    def reference(memory: Sram) -> list[int]:
        a = [memory.load_word(INPUT_A + 4 * i) for i in range(n * n)]
        b = [memory.load_word(INPUT_B + 4 * i) for i in range(n * n)]
        out = []
        for i in range(n):
            for j in range(n):
                total = sum(a[i * n + k] * b[k * n + j] for k in range(n))
                out.append(total & 0xFFFF_FFFF)
        return out

    return Kernel("matmul", program, n * n, reference)


def fibonacci(count: int) -> Kernel:
    """OUTPUT[i] = fib(i) for i < count (pure ALU/branch mix)."""
    program = assemble(f"""
        .equ N, {count}
        start:
            ldc r0, {OUTPUT}
            ldc r1, 0           # fib(i)
            ldc r2, 1           # fib(i+1)
            ldc r3, N
        loop:
            stw r1, r0, 0
            add r4, r1, r2
            mov r1, r2
            mov r2, r4
            addi r0, r0, 4
            subi r3, r3, 1
            bt r3, loop
            freet
    """, name=f"fib[{count}]")

    def reference(memory: Sram) -> list[int]:
        out, a, b = [], 0, 1
        for _ in range(count):
            out.append(a & 0xFFFF_FFFF)
            a, b = b, (a + b) & 0xFFFF_FFFF
        return out

    return Kernel("fibonacci", program, count, reference)


#: Registry of default-sized kernels for suites and benches.
def default_suite() -> list[Kernel]:
    """A representative kernel suite with varied instruction mixes."""
    return [
        memcpy_words(32),
        dot_product(32),
        vector_scale(32, 7),
        checksum32(32),
        bubble_sort(12),
        matrix_multiply(4),
        fibonacci(32),
    ]


def run_kernel(core: XCore, kernel: Kernel, a: list[int] | None = None,
               b: list[int] | None = None):
    """Load inputs, run the kernel to completion, verify, and return
    (outputs, thread).  Raises AssertionError on a wrong result."""
    if a is not None:
        kernel.load_inputs(core, a, b)
    thread = core.spawn(kernel.program)
    core.sim.run()
    if not thread.halted:
        raise RuntimeError(f"{kernel.name}: kernel did not finish")
    outputs = kernel.read_output(core)
    expected = kernel.reference(core.memory)
    if outputs != expected:
        raise AssertionError(
            f"{kernel.name}: output {outputs[:8]}... != expected {expected[:8]}..."
        )
    return outputs, thread
