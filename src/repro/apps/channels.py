"""Channel helpers for application code.

A :class:`AppChannel` is an allocated, destination-wired chanend pair —
the unit application patterns compose from.  The raw chanend API stays
available underneath for protocols that need control tokens.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.xs1.chanend import Chanend
from repro.xs1.core import XCore


@dataclass
class AppChannel:
    """A bidirectional channel between two cores (or one core twice)."""

    a: Chanend
    b: Chanend

    @classmethod
    def between(cls, core_a: XCore, core_b: XCore) -> "AppChannel":
        """Allocate ends on both cores and wire them to each other."""
        end_a = core_a.allocate_chanend()
        end_b = core_b.allocate_chanend()
        end_a.set_dest(end_b.address)
        end_b.set_dest(end_a.address)
        return cls(a=end_a, b=end_b)

    @property
    def bits_moved(self) -> int:
        """Payload bits sent over the channel in both directions."""
        return 8 * (self.a.tokens_sent + self.b.tokens_sent)
