"""Task-to-core placement strategies.

§V.D's recommendations — prefer core-local, then chip-local, then
off-chip communication — become placement *strategies* here; the
locality ablation bench runs the same pipeline under each and compares
throughput, latency and energy.
"""

from __future__ import annotations

from enum import Enum

from repro.board.assembly import MachineAssembly
from repro.network.routing import Layer
from repro.xs1.core import XCore


class Placement(Enum):
    """Where consecutive tasks land relative to each other."""

    SAME_CORE = "same-core"          # hardware threads of one core
    SAME_PACKAGE = "same-package"    # alternate between a package's two cores
    SAME_SLICE = "same-slice"        # walk the cores of one board
    CROSS_SLICE = "cross-slice"      # one core per slice, round-robin


def place(machine: MachineAssembly, count: int, strategy: Placement) -> list[XCore]:
    """Choose ``count`` cores for consecutive tasks under ``strategy``.

    The list may repeat core objects (SAME_CORE repeats one core
    ``count`` times — its hardware threads carry the tasks).
    """
    if count < 1:
        raise ValueError("need at least one task")
    if strategy is Placement.SAME_CORE:
        core = machine.cores[0]
        if count > core.config.max_threads:
            raise ValueError(
                f"{count} tasks exceed the {core.config.max_threads} "
                "hardware threads of one core"
            )
        return [core] * count

    if strategy is Placement.SAME_PACKAGE:
        chip = machine.slices[0].chips[0]
        pair = [chip.vertical_core, chip.horizontal_core]
        _check_thread_budget(pair, count)
        return [pair[i % 2] for i in range(count)]

    if strategy is Placement.SAME_SLICE:
        cores = machine.slices[0].cores
        if count > len(cores):
            _check_thread_budget(cores, count)
        return [cores[i % len(cores)] for i in range(count)]

    if strategy is Placement.CROSS_SLICE:
        if len(machine.slices) < 2:
            raise ValueError("cross-slice placement needs at least two slices")
        firsts = [board.cores[0] for board in machine.slices]
        _check_thread_budget(firsts, count)
        return [firsts[i % len(firsts)] for i in range(count)]

    raise ValueError(f"unknown strategy {strategy}")


def _check_thread_budget(cores: list[XCore], count: int) -> None:
    unique = {id(core): core for core in cores}.values()
    budget = sum(core.config.max_threads for core in unique)
    if count > budget:
        raise ValueError(f"{count} tasks exceed the {budget} available threads")


def communication_scope(cores: list[XCore], machine: MachineAssembly) -> str:
    """Classify the widest communication a placement induces.

    Returns one of ``core-local``, ``chip-local``, ``board-local``,
    ``off-board`` — the paper's locality tiers.
    """
    topology = machine.topology
    coords = [topology.coord_of(core.node_id) for core in cores]
    slices = {topology.slice_of(core.node_id) for core in cores}
    if len(slices) > 1:
        return "off-board"
    packages = {(c.x, c.y) for c in coords}
    if len(packages) > 1:
        return "board-local"
    if len({core.node_id for core in cores}) > 1:
        return "chip-local"
    return "core-local"
