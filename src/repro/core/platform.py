"""`SwallowSystem` — the paper's platform as one object.

Builds the machine (topology + cores + power rails + measurement
boards), optionally attaches Ethernet bridges, and exposes the
operations a Swallow user has: open channels, spawn programs or
behavioural tasks, run, scale frequency, and read energy — the
"energy transparency" loop.
"""

from __future__ import annotations

from repro.apps.channels import AppChannel
from repro.board.assembly import MachineAssembly, build_machine
from repro.core.transparency import EnergyReport, build_report
from repro.network.ethernet import EthernetBridge
from repro.obs import MetricsRegistry, MetricsSnapshot
from repro.obs.spans import Span, SpanRecorder
from repro.sim import Frequency, Simulator, TraceRecorder, us
from repro.xs1.assembler import Program
from repro.xs1.behavioral import BehavioralThread
from repro.xs1.core import XCore
from repro.xs1.thread import IsaThread


class SwallowSystem:
    """A complete, runnable Swallow machine."""

    def __init__(
        self,
        slices_x: int = 1,
        slices_y: int = 1,
        frequency: Frequency | None = None,
        sim: Simulator | None = None,
        ethernet_columns: tuple[int, ...] = (),
        metrics: bool | MetricsRegistry = True,
        **machine_kwargs,
    ):
        self.sim = sim or Simulator()
        self.machine: MachineAssembly = build_machine(
            self.sim, slices_x=slices_x, slices_y=slices_y,
            frequency=frequency, **machine_kwargs,
        )
        self.bridges = [
            EthernetBridge.attach(self.machine.topology, column=column)
            for column in ethernet_columns
        ]
        #: The machine-wide metrics registry.  ``metrics=False`` builds
        #: a disabled registry (near-zero overhead, empty snapshots);
        #: passing a :class:`~repro.obs.MetricsRegistry` shares one
        #: registry across systems.
        self.metrics = (
            metrics if isinstance(metrics, MetricsRegistry)
            else MetricsRegistry(enabled=bool(metrics))
        )
        self.sim.register_metrics(self.metrics)
        self.machine.register_metrics(self.metrics)
        self.tracer: TraceRecorder | None = None
        self._trace_metrics_registered = False
        #: Machine-wide causal-span recorder; created on first use via
        #: :meth:`spans`.
        self.span_recorder: SpanRecorder | None = None

    # -- structure ---------------------------------------------------------------

    @property
    def cores(self) -> list[XCore]:
        """Every core, slice by slice."""
        return self.machine.cores

    @property
    def topology(self):
        """The unwoven-lattice topology."""
        return self.machine.topology

    @property
    def accounting(self):
        """The machine-wide energy ledger."""
        return self.machine.accounting

    @property
    def num_cores(self) -> int:
        """Total cores in the machine."""
        return len(self.machine.cores)

    def core(self, index: int) -> XCore:
        """Core by position (slice-major order)."""
        return self.machine.cores[index]

    def measurement_board(self, sx: int = 0, sy: int = 0):
        """A slice's five-channel ADC board (§II)."""
        return self.machine.slice_board(sx, sy).measurement

    # -- programming ---------------------------------------------------------------

    def channel(self, core_a: XCore, core_b: XCore) -> AppChannel:
        """Open a channel between two cores."""
        return AppChannel.between(core_a, core_b)

    def spawn(self, core: XCore, program: Program, **kwargs) -> IsaThread:
        """Start an assembled program on a hardware thread of ``core``."""
        return core.spawn(program, **kwargs)

    def spawn_task(
        self,
        core: XCore,
        generator,
        name: str | None = None,
        span: Span | None = None,
    ) -> BehavioralThread:
        """Start a behavioural task on ``core``.

        With a ``span`` (see :meth:`spans`), the task's instructions,
        sends and per-hop wire traffic are charged to it; the span opens
        now and closes when the task halts.
        """
        thread = BehavioralThread(core, generator, name=name)
        if span is not None:
            if span.node_id is None:
                span.node_id = core.node_id
            span.begin(self.sim.now)
            thread.span = span
        return thread

    # -- execution -----------------------------------------------------------------

    def run(self, max_events: int | None = None) -> int:
        """Run the simulation until idle (all threads blocked or halted)."""
        return self.sim.run(max_events=max_events)

    def run_for_us(self, microseconds: float) -> int:
        """Run for a fixed span of simulated time."""
        return self.sim.run_for(us(microseconds))

    def set_frequency(self, frequency: Frequency, cores: list[XCore] | None = None) -> None:
        """Frequency-scale some or all cores (paper §III.B)."""
        for core in cores if cores is not None else self.cores:
            core.set_frequency(frequency)

    @property
    def all_halted(self) -> bool:
        """True when every spawned thread on every core has finished."""
        return all(core.all_halted for core in self.cores)

    # -- transparency -----------------------------------------------------------------

    def energy_report(self) -> EnergyReport:
        """Snapshot of where the energy went (the headline feature)."""
        return build_report(self)

    def metrics_snapshot(self) -> MetricsSnapshot:
        """Collect every published metric series right now."""
        return self.metrics.snapshot()

    def trace(
        self,
        kinds=None,
        capacity: int | None = None,
        tracer: TraceRecorder | None = None,
    ) -> TraceRecorder:
        """Attach one machine-wide trace recorder and return it.

        Records core ``issue`` events, switch ``route_open`` /
        ``route_close`` / ``deliver`` events, link ``token`` events and
        ADC ``sample`` events.  ``kinds`` filters at record time;
        ``capacity`` bounds memory with flight-recorder (keep-newest)
        semantics.  Export the result with
        :meth:`~repro.sim.tracing.TraceRecorder.to_chrome_trace` or
        :meth:`~repro.sim.tracing.TraceRecorder.to_jsonl`.
        """
        recorder = tracer or TraceRecorder(kinds=kinds, capacity=capacity)
        self.machine.set_tracer(recorder)
        self.tracer = recorder
        if not self._trace_metrics_registered:
            # Lazy series reading whatever recorder is current, so
            # re-attaching a tracer never duplicates the series.
            self.metrics.counter_fn(
                "trace.dropped_events",
                lambda: self.tracer.dropped if self.tracer is not None else 0,
            )
            self._trace_metrics_registered = True
        return recorder

    def netscope(self, window_ps: int = 1_000_000):
        """Attach the fabric observatory (created on first call).

        Instruments every link and switch port with windowed telemetry
        probes (see :class:`repro.obs.netscope.NetScope`) and registers
        its blocked-time series with the system metrics registry.  Pure
        observer: attaching it never changes the event schedule.
        """
        from repro.obs.netscope import NetScope

        fabric = self.topology.fabric
        if fabric.netscope is None:
            scope = NetScope(fabric, topology=self.topology,
                             window_ps=window_ps)
            scope.register_metrics(self.metrics)
        return fabric.netscope

    def spans(self, trace_id: int = 1) -> SpanRecorder:
        """The machine-wide causal-span recorder (created on first call).

        Create spans from it, attach them to tasks via
        :meth:`spawn_task`, and export with
        :func:`repro.obs.energyscope.attribute_energy` or the Chrome
        trace writer (flow events across cores).
        """
        if self.span_recorder is None:
            self.span_recorder = SpanRecorder(trace_id=trace_id)
        return self.span_recorder

    def energy_attribution(self):
        """Per-span energy partition; see :func:`attribute_energy`."""
        from repro.obs.energyscope import attribute_energy

        return attribute_energy(self, self.span_recorder)

    def profile(self, **profiler_options):
        """Profile the simulation kernel; see :meth:`Simulator.profile`.

        The system's attached tracer (if any) is passed along so the
        profile surfaces flight-recorder ring-buffer evictions.  Keyword
        arguments configure the profiler (``wall_sample_every``,
        ``depth_timeline_every``, ``meta_capacity``).
        """
        return self.sim.profile(tracer=self.tracer, **profiler_options)

    # -- checkpointing (see repro.checkpoint) ------------------------------------

    def snapshot_state(self) -> dict:
        """Canonical state of the whole platform, one dict per layer.

        Aggregates the per-component ``snapshot_state()`` hooks — event
        kernel, cores (threads, memories, chanends), fabric (switches,
        links) and the energy ledger.  Runtime layers that live *above*
        the platform (NanoOS, FaultCampaign, Watchdog) snapshot
        themselves; :class:`repro.checkpoint.Snapshot` stitches both
        halves together.
        """
        return {
            "sim": self.sim.snapshot_state(),
            "cores": {
                str(core.node_id): core.snapshot_state()
                for core in sorted(self.cores, key=lambda c: c.node_id)
            },
            "fabric": self.topology.fabric.snapshot_state(),
            "energy": self.accounting.snapshot_state(),
        }

    def restore_state(self, state: dict) -> None:
        """Verify a replayed platform against checkpointed state."""
        from repro.sim.state import verify_state

        verify_state(self.snapshot_state(), state, "system")

    def measured_gips(self) -> float:
        """Aggregate instruction throughput achieved so far, in GIPS."""
        if self.sim.now == 0:
            return 0.0
        total = sum(core.stats.total_instructions for core in self.cores)
        return total / (self.sim.now / 1e12) / 1e9

    def __repr__(self) -> str:
        return (
            f"<SwallowSystem {self.machine.topology.slices_x}x"
            f"{self.machine.topology.slices_y} slices, {self.num_cores} cores, "
            f"{len(self.bridges)} bridge(s)>"
        )
