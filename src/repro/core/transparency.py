"""Energy-transparency reporting.

Turns the raw ledgers into the relationship the paper promises: "a
predictable relationship between software execution and hardware energy
consumption".  A report ties instruction counts, traffic, and joules
together per core and per category, and renders as a readable table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.core.platform import SwallowSystem


@dataclass(frozen=True)
class CoreEnergyRow:
    """One core's line in the report."""

    node_id: int
    instructions: int
    energy_j: float
    mean_power_mw: float

    @property
    def nj_per_instruction(self) -> float:
        """Average energy per executed instruction, nJ."""
        if self.instructions == 0:
            return 0.0
        return self.energy_j * 1e9 / self.instructions


@dataclass
class EnergyReport:
    """A full energy-transparency snapshot."""

    elapsed_s: float
    cores: list[CoreEnergyRow] = field(default_factory=list)
    link_energy_j: float = 0.0
    support_energy_j: float = 0.0
    link_bits_by_class: dict[str, float] = field(default_factory=dict)
    #: Link energy attributable to reliable-channel retransmissions —
    #: informational (a slice *of* ``link_energy_j``, not added on top),
    #: so fault campaigns show up in transparency reports.
    retry_energy_j: float = 0.0

    @property
    def core_energy_j(self) -> float:
        """Total core energy."""
        return sum(row.energy_j for row in self.cores)

    @property
    def total_energy_j(self) -> float:
        """Cores + links + support."""
        return self.core_energy_j + self.link_energy_j + self.support_energy_j

    @property
    def total_instructions(self) -> int:
        """Instructions executed machine-wide."""
        return sum(row.instructions for row in self.cores)

    @property
    def mean_power_w(self) -> float:
        """Average machine power over the report span."""
        if self.elapsed_s == 0:
            return 0.0
        return self.total_energy_j / self.elapsed_s

    def to_dict(self) -> dict:
        """A JSON-serialisable form of the report (for logging/export)."""
        return {
            "elapsed_s": self.elapsed_s,
            "total_energy_j": self.total_energy_j,
            "core_energy_j": self.core_energy_j,
            "link_energy_j": self.link_energy_j,
            "support_energy_j": self.support_energy_j,
            "retry_energy_j": self.retry_energy_j,
            "total_instructions": self.total_instructions,
            "mean_power_w": self.mean_power_w,
            "link_bits_by_class": dict(self.link_bits_by_class),
            "cores": [
                {
                    "node_id": row.node_id,
                    "instructions": row.instructions,
                    "energy_j": row.energy_j,
                    "mean_power_mw": row.mean_power_mw,
                }
                for row in self.cores
            ],
        }

    def render(self, top: int = 8) -> str:
        """A printable table (the ``top`` busiest cores plus totals)."""
        lines = [
            f"Energy report over {self.elapsed_s * 1e6:.1f} us",
            f"{'core':>6} {'instructions':>14} {'energy (uJ)':>12} "
            f"{'power (mW)':>11} {'nJ/instr':>9}",
        ]
        busiest = sorted(self.cores, key=lambda r: r.instructions, reverse=True)
        for row in busiest[:top]:
            lines.append(
                f"{row.node_id:>6} {row.instructions:>14} "
                f"{row.energy_j * 1e6:>12.2f} {row.mean_power_mw:>11.1f} "
                f"{row.nj_per_instruction:>9.2f}"
            )
        if len(busiest) > top:
            lines.append(f"  ... {len(busiest) - top} more cores")
        lines.append(
            f"totals: cores {self.core_energy_j * 1e6:.1f} uJ, "
            f"links {self.link_energy_j * 1e6:.3f} uJ, "
            f"support {self.support_energy_j * 1e6:.1f} uJ, "
            f"mean power {self.mean_power_w:.3f} W"
        )
        if self.retry_energy_j > 0:
            lines.append(
                f"of link energy, {self.retry_energy_j * 1e9:.2f} nJ "
                f"was retransmission (reliable-channel retries)"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class ThreadEnergyRow:
    """Energy attributed to one hardware thread."""

    thread_name: str
    node_id: int
    instructions: int
    energy_j: float


def attribute_to_threads(system: "SwallowSystem") -> list[ThreadEnergyRow]:
    """Split each core's energy across its threads by issued instructions.

    The XS1's fixed-cost pipeline makes this attribution well-posed: a
    thread's share of the core's issue slots *is* its share of the
    dynamic activity.  Cores that executed nothing attribute all their
    (idle) energy to a synthetic ``<idle>`` row, so totals are conserved.
    """
    accounting = system.accounting
    accounting.update()
    rows: list[ThreadEnergyRow] = []
    for core in system.cores:
        energy = accounting.trackers[core.node_id].energy_j
        total_instructions = core.stats.total_instructions
        if total_instructions == 0:
            rows.append(
                ThreadEnergyRow("<idle>", core.node_id, 0, energy)
            )
            continue
        attributed = 0.0
        for thread in core.threads:
            share = thread.instructions_executed / total_instructions
            thread_energy = energy * share
            attributed += thread_energy
            rows.append(
                ThreadEnergyRow(
                    thread.name, core.node_id,
                    thread.instructions_executed, thread_energy,
                )
            )
        remainder = energy - attributed
        if remainder > 1e-18:
            rows.append(ThreadEnergyRow("<idle>", core.node_id, 0, remainder))
    return rows


def build_report(system: "SwallowSystem") -> EnergyReport:
    """Assemble an :class:`EnergyReport` from a system's ledgers.

    When the system carries an enabled metrics registry
    (``SwallowSystem.metrics``), every number in the report is read out
    of one :meth:`~repro.obs.MetricsRegistry.snapshot` — the report *is*
    a view over the metrics, so the two can never disagree.  Systems
    built with ``metrics=False`` fall back to reading the ledgers
    directly; both paths draw from the same accumulators.
    """
    registry = getattr(system, "metrics", None)
    if registry is not None and registry.enabled:
        return _report_from_snapshot(system, registry.snapshot())
    accounting = system.accounting
    accounting.update()
    elapsed = accounting.elapsed_s
    rows = []
    for core in system.cores:
        tracker = accounting.trackers[core.node_id]
        energy = tracker.energy_j
        rows.append(
            CoreEnergyRow(
                node_id=core.node_id,
                instructions=core.stats.total_instructions,
                energy_j=energy,
                mean_power_mw=(energy / elapsed * 1e3) if elapsed else 0.0,
            )
        )
    stats = system.topology.fabric.link_stats_by_class()
    return EnergyReport(
        elapsed_s=elapsed,
        cores=rows,
        link_energy_j=accounting.link_energy_j,
        support_energy_j=accounting.support_energy_j(),
        link_bits_by_class={name: s["bits"] for name, s in stats.items()},
        retry_energy_j=accounting.retry_energy_j(),
    )


def _report_from_snapshot(system: "SwallowSystem", snapshot) -> EnergyReport:
    """Build the report purely from a metrics snapshot."""
    elapsed = snapshot.value("energy.elapsed_s", default=0.0)
    rows = []
    for core in system.cores:
        node = str(core.node_id)
        energy = snapshot.value("energy.core_j", default=0.0, node=node)
        instructions = int(snapshot.sum("core.instructions", node=node))
        rows.append(
            CoreEnergyRow(
                node_id=core.node_id,
                instructions=instructions,
                energy_j=energy,
                mean_power_mw=(energy / elapsed * 1e3) if elapsed else 0.0,
            )
        )
    return EnergyReport(
        elapsed_s=elapsed,
        cores=rows,
        link_energy_j=snapshot.value("energy.links_j", default=0.0),
        support_energy_j=snapshot.value("energy.support_j", default=0.0),
        link_bits_by_class={
            labels["class"]: bits
            for labels, bits in snapshot.series("fabric.bits")
        },
        retry_energy_j=snapshot.value("energy.retry_j", default=0.0),
    )
