"""A self-measuring power governor.

The paper's flagship capability: "it is possible to create a program
that can measure its own power consumption and adapt to the results"
(§II).  The governor is such a program: a behavioural task that
periodically samples a rail of the measurement daughter-board and
frequency-scales the cores on that rail to hold a power budget,
exploiting the XS1-L's run-time frequency scaling (§III.B).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.energy.measurement import MeasurementBoard
from repro.sim import Frequency
from repro.xs1.behavioral import BehavioralThread, Sleep
from repro.xs1.core import XCore

#: Frequency ladder the governor steps through (MHz).
DEFAULT_LADDER_MHZ = (71, 125, 250, 375, 500)


@dataclass
class GovernorLog:
    """What the governor saw and did."""

    samples_mw: list[float] = field(default_factory=list)
    frequencies_mhz: list[float] = field(default_factory=list)
    adjustments: int = 0


class PowerGovernor:
    """Budget-holding frequency governor for one measured rail."""

    def __init__(
        self,
        board: MeasurementBoard,
        channel: int,
        budget_mw: float,
        period_cycles: int = 50_000,
        ladder_mhz: tuple[int, ...] = DEFAULT_LADDER_MHZ,
        headroom: float = 0.85,
    ):
        if budget_mw <= 0:
            raise ValueError("budget must be positive")
        if not ladder_mhz or list(ladder_mhz) != sorted(ladder_mhz):
            raise ValueError("frequency ladder must be ascending and non-empty")
        self.board = board
        self.channel = channel
        self.budget_mw = budget_mw
        self.period_cycles = period_cycles
        self.ladder_mhz = ladder_mhz
        self.headroom = headroom
        self.log = GovernorLog()
        self._level = len(ladder_mhz) - 1

    @property
    def governed_cores(self) -> list[XCore]:
        """The cores on the sampled rail."""
        return self.board.rails[self.channel].cores

    def install(self, host_core: XCore, iterations: int) -> BehavioralThread:
        """Run the governor loop on ``host_core`` for ``iterations`` samples."""

        def body():
            for _ in range(iterations):
                yield Sleep(self.period_cycles)
                reading = self.board.sample_channel(self.channel)
                self.log.samples_mw.append(reading)
                self._adjust(reading)
                self.log.frequencies_mhz.append(self.ladder_mhz[self._level])

        return BehavioralThread(host_core, body(), name="governor")

    def _adjust(self, reading_mw: float) -> None:
        if reading_mw > self.budget_mw and self._level > 0:
            self._level -= 1
        elif (
            reading_mw < self.budget_mw * self.headroom
            and self._level < len(self.ladder_mhz) - 1
        ):
            self._level += 1
        else:
            return
        self.log.adjustments += 1
        frequency = Frequency.mhz(self.ladder_mhz[self._level])
        for core in self.governed_cores:
            core.set_frequency(frequency)

    # -- checkpointing (see repro.checkpoint) ------------------------------------

    def snapshot_state(self) -> dict:
        """Canonical governor state: configuration, ladder level, log.

        Everything a deterministic replay must reproduce: the budget
        and governed rail (configuration), the current ladder level,
        and the full sample/adjustment log.
        """
        return {
            "channel": self.channel,
            "budget_mw": self.budget_mw,
            "period_cycles": self.period_cycles,
            "ladder_mhz": [float(f) for f in self.ladder_mhz],
            "headroom": self.headroom,
            "level": self._level,
            "governed_nodes": [
                core.node_id for core in self.governed_cores
            ],
            "samples_mw": list(self.log.samples_mw),
            "frequencies_mhz": list(self.log.frequencies_mhz),
            "adjustments": self.log.adjustments,
        }

    def restore_state(self, state: dict) -> None:
        """Verify the replayed governor against checkpointed state."""
        from repro.sim.state import verify_state

        verify_state(self.snapshot_state(), state, "governor")
