"""The assembled platform: SwallowSystem, transparency, governor, nOS."""

from repro.core.governor import DEFAULT_LADDER_MHZ, GovernorLog, PowerGovernor
from repro.core.nos import MapJob, NanoOS, TaskHandle
from repro.core.platform import SwallowSystem
from repro.core.transparency import (
    CoreEnergyRow,
    EnergyReport,
    ThreadEnergyRow,
    attribute_to_threads,
    build_report,
)
from repro.core.watchdog import RollbackSignal, Watchdog

__all__ = [
    "CoreEnergyRow",
    "ThreadEnergyRow",
    "attribute_to_threads",
    "DEFAULT_LADDER_MHZ",
    "EnergyReport",
    "GovernorLog",
    "MapJob",
    "NanoOS",
    "PowerGovernor",
    "RollbackSignal",
    "SwallowSystem",
    "TaskHandle",
    "Watchdog",
    "build_report",
]
