"""Watchdog supervision: deadlines, heartbeats, and a recovery ladder.

The hardware Swallow grid has no shared memory and no global OS — a
wedged task is invisible unless something *watches* it.  The watchdog
is that something: it periodically fingerprints every watched task's
progress (instructions retired, restart generation, heartbeats, or a
caller-supplied progress probe) and fires when a task misses its
deadline or stops making progress.

Firing climbs a two-rung recovery ladder:

1. **Replace** — declare the task's core dead (the fail-stop
   assumption) and heal placement through the existing
   :meth:`~repro.core.nos.NanoOS.handle_core_failure` path, exactly as
   if a fault campaign had killed the core.
2. **Rollback** — if the task was already replaced once (or healing is
   unavailable / out of budget) the stall is not the core's fault;
   raise :class:`RollbackSignal` so the run harness
   (:class:`repro.checkpoint.ResumableRun`) rolls back to the last
   checkpoint and replays with the offending fault masked.

Every action is recorded in :attr:`Watchdog.actions` with simulation
timestamps, so the eventual :class:`~repro.checkpoint.RecoveryReport`
is deterministic: the same configuration produces byte-identical
ladders.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.sim import us
from repro.xs1.errors import ResourceError

if TYPE_CHECKING:
    from repro.core.nos import NanoOS, TaskHandle
    from repro.core.platform import SwallowSystem
    from repro.obs.metrics import MetricsRegistry


class RollbackSignal(Exception):
    """Rung 2 of the recovery ladder: replay from the last checkpoint.

    Raised out of the watchdog's periodic check (and therefore out of
    :meth:`Simulator.step`); the run harness catches it, masks the
    suspect fault, and replays.  Carries the stalled task for the
    recovery report.
    """

    def __init__(self, reason: str, task_id: int | None = None):
        super().__init__(reason)
        self.reason = reason
        self.task_id = task_id


@dataclass
class _Watch:
    """Supervision record of one task."""

    handle: "TaskHandle"
    #: Caller-supplied progress probe; its value changing between two
    #: checks counts as progress.  ``None`` falls back to the built-in
    #: fingerprint (restarts, done, instructions retired, heartbeats).
    progress: Callable[[], object] | None
    #: Absolute completion deadline in picoseconds (``None`` = none).
    deadline_ps: int | None
    #: Consecutive no-progress checks tolerated before firing.
    stall_checks: int
    #: Optional completion predicate: once true, supervision ends even
    #: if the task is still running (e.g. a consumer that finished its
    #: payload and is merely draining late retransmissions).
    until: Callable[[], bool] | None = None
    fingerprint: object = None
    stalled: int = 0
    #: How many times the ladder's replace rung already ran for this
    #: task; a second fire escalates straight to rollback.
    escalations: int = 0
    fired: int = 0


class Watchdog:
    """Periodic progress supervision over NanoOS tasks."""

    def __init__(
        self,
        system: "SwallowSystem",
        nos: "NanoOS | None" = None,
        check_every_us: float = 50.0,
    ):
        self.system = system
        self.nos = nos
        self.check_every_us = check_every_us
        self.check_every_ps = us(check_every_us)
        self.watches: dict[int, _Watch] = {}
        self.heartbeats: dict[int, int] = {}
        self.fired = 0
        self.checks = 0
        #: Firings whose cause was a missed completion deadline.
        self.deadline_misses = 0
        #: Deterministic ladder journal: one dict per action, in firing
        #: order, with simulation timestamps.
        self.actions: list[dict] = []
        self._armed = False

    # -- registration -------------------------------------------------------

    def watch(
        self,
        handle: "TaskHandle",
        progress: Callable[[], object] | None = None,
        deadline_us: float | None = None,
        stall_checks: int = 3,
        until: Callable[[], bool] | None = None,
    ) -> None:
        """Supervise ``handle``; see module docstring for semantics."""
        if stall_checks < 1:
            raise ValueError("stall_checks must be >= 1")
        if handle.task_id in self.watches:
            raise ValueError(f"task {handle.task_id} already watched")
        self.watches[handle.task_id] = _Watch(
            handle=handle,
            progress=progress,
            deadline_ps=None if deadline_us is None else us(deadline_us),
            stall_checks=stall_checks,
            until=until,
        )

    def heartbeat(self, task_id: int) -> None:
        """Task-reported liveness; bump the task's heartbeat counter.

        Tasks call this from their own bodies (via closure); a changing
        heartbeat count is progress even when no instructions retire.
        """
        self.heartbeats[task_id] = self.heartbeats.get(task_id, 0) + 1

    def arm(self) -> None:
        """Start the periodic check (call once, after registering watches)."""
        if self._armed:
            raise RuntimeError("watchdog already armed")
        self._armed = True
        self.system.sim.schedule(self.check_every_ps, self._check)

    # -- the periodic check -------------------------------------------------

    def _fingerprint(self, watch: _Watch) -> object:
        if watch.progress is not None:
            return watch.progress()
        handle = watch.handle
        thread = handle.thread
        return (
            handle.restarts,
            handle.done,
            thread.instructions_executed if thread is not None else -1,
            self.heartbeats.get(handle.task_id, 0),
        )

    def _check(self) -> None:
        self.checks += 1
        outstanding = False
        for task_id in sorted(self.watches):
            watch = self.watches[task_id]
            if watch.handle.done or (
                watch.until is not None and watch.until()
            ):
                continue
            outstanding = True
            fingerprint = self._fingerprint(watch)
            if fingerprint != watch.fingerprint:
                watch.fingerprint = fingerprint
                watch.stalled = 0
            else:
                watch.stalled += 1
            overdue = (
                watch.deadline_ps is not None
                and self.system.sim.now >= watch.deadline_ps
            )
            if overdue or watch.stalled >= watch.stall_checks:
                watch.stalled = 0
                self._fire(watch, "deadline" if overdue else "stall")
        if outstanding:
            # Keeps the event queue alive while everything else is
            # blocked — a fully wedged system would otherwise go idle
            # silently instead of being detected.
            self.system.sim.schedule(self.check_every_ps, self._check)
        else:
            self._armed = False

    def _fire(self, watch: _Watch, cause: str) -> None:
        self.fired += 1
        watch.fired += 1
        if cause == "deadline":
            self.deadline_misses += 1
        handle = watch.handle
        now = self.system.sim.now
        if self.system.tracer is not None:
            self.system.tracer.record(
                now, "watchdog", "watchdog.fired", handle.task_id, cause
            )
        if (
            self.nos is not None
            and watch.escalations == 0
            and not handle.core.failed
        ):
            try:
                replaced = self.nos.handle_core_failure(handle.core)
            except ResourceError as error:
                self.actions.append({
                    "time_ps": now,
                    "task_id": handle.task_id,
                    "cause": cause,
                    "rung": "replace_failed",
                    "detail": str(error),
                })
            else:
                watch.escalations += 1
                self.actions.append({
                    "time_ps": now,
                    "task_id": handle.task_id,
                    "cause": cause,
                    "rung": "replace",
                    "replaced": len(replaced),
                })
                return
        self.actions.append({
            "time_ps": now,
            "task_id": handle.task_id,
            "cause": cause,
            "rung": "rollback",
        })
        raise RollbackSignal(
            f"task {handle.task_id} made no progress ({cause}) at {now} ps",
            task_id=handle.task_id,
        )

    # -- observability ------------------------------------------------------

    def register_metrics(self, registry: "MetricsRegistry") -> None:
        """Publish ``watchdog.fired`` / ``watchdog.checks`` /
        ``watchdog.watched`` series (lazily collected)."""
        registry.counter_fn("watchdog.fired", lambda: self.fired)
        registry.counter_fn("watchdog.checks", lambda: self.checks)
        registry.counter_fn(
            "watchdog.deadline_miss", lambda: self.deadline_misses
        )

        def escalations(emit) -> None:
            # One ``watchdog.escalations{stage=...}`` series per recovery
            # rung actually exercised, from the deterministic ladder
            # journal — nothing is emitted for rungs never climbed.
            by_stage: dict[str, int] = {}
            for action in self.actions:
                stage = action["rung"]
                by_stage[stage] = by_stage.get(stage, 0) + 1
            for stage in sorted(by_stage):
                emit("watchdog.escalations", {"stage": stage}, by_stage[stage])

        registry.register_collector(escalations)
        registry.gauge_fn(
            "watchdog.watched",
            lambda: sum(1 for w in self.watches.values() if not w.handle.done),
        )

    # -- checkpointing (see repro.checkpoint) -------------------------------

    def snapshot_state(self) -> dict:
        """Canonical supervision state for a checkpoint bundle."""
        return {
            "armed": self._armed,
            "checks": self.checks,
            "fired": self.fired,
            "deadline_misses": self.deadline_misses,
            "heartbeats": {
                str(task_id): count
                for task_id, count in sorted(self.heartbeats.items())
            },
            "watches": {
                str(task_id): {
                    "stalled": watch.stalled,
                    "escalations": watch.escalations,
                    "fired": watch.fired,
                    "fingerprint": repr(watch.fingerprint),
                    "done": watch.handle.done,
                }
                for task_id, watch in sorted(self.watches.items())
            },
            "actions": [dict(action) for action in self.actions],
        }

    def restore_state(self, state: dict) -> None:
        """Verify a replayed watchdog against checkpointed state."""
        from repro.sim.state import verify_state

        verify_state(self.snapshot_state(), state, "watchdog")

    def __repr__(self) -> str:
        return (
            f"<Watchdog {len(self.watches)} watched, "
            f"checks={self.checks} fired={self.fired}>"
        )
