"""nOS-lite: a nano-sized distributed task runtime (paper ref. [3]).

The Swallow project built "nOS: a nano-sized distributed operating
system for resource optimisation on many-core systems".  This module is
a lightweight reproduction of its placement/boot role: tasks are
submitted centrally, placed onto the least-loaded cores (optionally
pinned), and — when the machine has an Ethernet bridge — charged the
realistic program-upload time before they start.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generator

from repro.core.platform import SwallowSystem
from repro.network.ethernet import EthernetBridge
from repro.xs1.assembler import Program
from repro.xs1.behavioral import BehavioralThread
from repro.xs1.core import XCore
from repro.xs1.errors import ResourceError
from repro.xs1.thread import HardwareThread, IsaThread


@dataclass
class MapJob:
    """A parallel-map collective in flight."""

    expected: int
    completed: int = 0
    handles: list["TaskHandle"] = field(default_factory=list)
    results: dict = field(default_factory=dict)

    @property
    def done(self) -> bool:
        """All items evaluated."""
        return self.completed == self.expected

    def ordered_results(self) -> list:
        """Results in submission order (job must be done)."""
        if not self.done:
            raise RuntimeError(
                f"map job incomplete: {self.completed}/{self.expected}"
            )
        return [self.results[i] for i in range(self.expected)]


@dataclass
class TaskHandle:
    """A submitted task."""

    task_id: int
    core: XCore
    thread: HardwareThread | None = None
    start_time_ps: int | None = None
    #: How often the task has been restarted on a new core after its
    #: previous core died mid-run (see :meth:`NanoOS.handle_core_failure`).
    restarts: int = 0
    #: Rebuilds the task's thread on a given core — kept so the runtime
    #: can restart the task from scratch after a core failure.
    spawn_fn: Callable[[XCore], HardwareThread] | None = None
    #: Code size charged per (re-)upload over the Ethernet bridge.
    code_bits: int = 0
    #: Causal span charged for this task's work (when the runtime was
    #: built with a span recorder).  Restarts keep the same span, so a
    #: healed task's energy stays attributed across cores.
    span: object | None = None

    @property
    def started(self) -> bool:
        """True once the task occupies a hardware thread."""
        return self.thread is not None

    @property
    def done(self) -> bool:
        """True when the task has run to completion."""
        return self.thread is not None and self.thread.halted


class NanoOS:
    """Central task placement over a Swallow machine."""

    def __init__(
        self,
        system: SwallowSystem,
        bridge: EthernetBridge | None = None,
        fault_budget: int | None = None,
        spans: bool = False,
    ):
        self.system = system
        self.bridge = bridge
        #: With ``spans=True`` every submitted behavioural task gets a
        #: causal span (child of one ``nos`` root span) on the system's
        #: span recorder, feeding per-task energy attribution.
        self.span_root = None
        if spans:
            recorder = system.spans()
            self.span_root = recorder.span("nos")
        self._next_task_id = 0
        self.tasks: list[TaskHandle] = []
        self._upload_busy_until_ps = 0
        #: Maximum number of core deaths the runtime agrees to heal
        #: (FEST-style k-fault budget); ``None`` means unbounded.
        self.fault_budget = fault_budget
        self.failed_cores: list[XCore] = []
        #: Tasks restarted on a survivor core after their core died.
        self.replacements = 0

    # -- placement ---------------------------------------------------------------

    def _load(self, core: XCore) -> int:
        return core.live_threads + sum(
            1 for t in self.tasks if t.core is core and not t.started
        )

    def pick_core(self, pin: XCore | None = None) -> XCore:
        """Least-loaded placement (stable tie-break on node id)."""
        if pin is not None:
            if pin.failed:
                raise ResourceError(f"{pin.name}: core has failed")
            if self._load(pin) >= pin.config.max_threads:
                raise ResourceError(f"{pin.name}: no free hardware thread")
            return pin
        candidates = sorted(
            (c for c in self.system.cores if not c.failed),
            key=lambda c: (self._load(c), c.node_id),
        )
        if not candidates:
            raise ResourceError("every core in the machine has failed")
        best = candidates[0]
        if self._load(best) >= best.config.max_threads:
            raise ResourceError("no free hardware thread anywhere in the machine")
        return best

    # -- submission ---------------------------------------------------------------

    def submit(
        self,
        task_factory: Callable[[XCore], Generator],
        pin: XCore | None = None,
        name: str | None = None,
    ) -> TaskHandle:
        """Submit a behavioural task; ``task_factory(core)`` builds its body.

        With a bridge attached, the task starts only after its (nominal
        1 KiB) code upload crosses the Ethernet at 80 Mbit/s.
        """
        core = self.pick_core(pin)
        handle = TaskHandle(task_id=self._next_task_id, core=core)
        self._next_task_id += 1
        self.tasks.append(handle)
        task_name = name or f"nos.t{handle.task_id}"
        if self.span_root is not None:
            handle.span = self.span_root.child(task_name)

        def spawn(on_core: XCore) -> HardwareThread:
            thread = BehavioralThread(
                on_core, task_factory(on_core), name=task_name
            )
            if handle.span is not None:
                if handle.span.node_id is None:
                    handle.span.node_id = on_core.node_id
                handle.span.begin(self.system.sim.now)
                # A restart after a core death re-opens the span the
                # dying thread closed; it finally closes at real
                # completion.
                handle.span.end_ps = None
                thread.span = handle.span
            return thread

        handle.spawn_fn = spawn
        handle.code_bits = 8 * 1024
        self._schedule_start(handle)
        return handle

    def submit_program(
        self,
        program: Program,
        entry: str | int = "start",
        pin: XCore | None = None,
        regs: dict[str, int] | None = None,
    ) -> TaskHandle:
        """Submit an assembled program; upload time scales with its size."""
        core = self.pick_core(pin)
        handle = TaskHandle(task_id=self._next_task_id, core=core)
        self._next_task_id += 1
        self.tasks.append(handle)

        def spawn(on_core: XCore) -> HardwareThread:
            return on_core.spawn(program, entry=entry, regs=regs)

        handle.spawn_fn = spawn
        handle.code_bits = 32 * len(program.instructions) + 8 * sum(
            len(block) for _, block in program.data_blocks
        )
        self._schedule_start(handle)
        return handle

    def _schedule_start(self, handle: TaskHandle) -> None:
        """Queue the task's (re-)upload and start it when the upload lands.

        The start event is tied to the task's restart generation: if the
        placed core dies before the upload completes, the task is re-placed
        with a fresh generation and the stale event becomes a no-op.
        """
        generation = handle.restarts

        def start() -> None:
            if handle.restarts != generation or handle.core.failed:
                return
            handle.thread = handle.spawn_fn(handle.core)
            handle.start_time_ps = self.system.sim.now

        self.system.sim.schedule_at(self._upload_slot(handle.code_bits), start)

    def _upload_slot(self, code_bits: int) -> int:
        """Reserve the bridge for one upload; uploads serialise at 80 Mbit/s."""
        now = self.system.sim.now
        if self.bridge is None:
            return now
        duration_ps = round(self.bridge.transfer_time_s(code_bits) * 1e12)
        start = max(now, self._upload_busy_until_ps)
        self._upload_busy_until_ps = start + duration_ps
        return self._upload_busy_until_ps

    # -- healing ---------------------------------------------------------------

    def handle_core_failure(self, core: XCore) -> list[TaskHandle]:
        """Kill ``core`` and restart its unfinished tasks on survivors.

        Orphans are collected *before* the core halts its threads —
        afterwards they would be indistinguishable from tasks that
        finished normally.  Each orphan restarts from scratch (its
        factory is re-run) on a least-loaded surviving core, paying the
        upload time again.  Honours the :attr:`fault_budget`: the
        (k+1)-th core death raises :class:`ResourceError` instead of
        healing.  Returns the re-placed handles.
        """
        if core in self.failed_cores:
            return []
        if (
            self.fault_budget is not None
            and len(self.failed_cores) >= self.fault_budget
        ):
            raise ResourceError(
                f"fault budget exhausted: {len(self.failed_cores)} core"
                f" failure(s) already healed, budget is {self.fault_budget}"
            )
        orphans = [
            t for t in self.tasks if t.core is core and not t.done
        ]
        core.fail()
        self.failed_cores.append(core)
        for handle in orphans:
            handle.core = self.pick_core()
            handle.thread = None
            handle.start_time_ps = None
            handle.restarts += 1
            self.replacements += 1
            self._schedule_start(handle)
        return orphans

    # -- collectives -----------------------------------------------------------------

    def map(
        self,
        function: Callable,
        items: list,
        cost_per_item: int = 100,
    ) -> "MapJob":
        """Parallel map: one task per item, least-loaded placement.

        ``function`` is evaluated on the simulated core after
        ``cost_per_item`` instructions of modelled work, so the job has
        realistic timing and energy.  Results land in submission order in
        :attr:`MapJob.results` once the simulation has run.
        """
        job = MapJob(expected=len(items))

        def make_task(index, item):
            def factory(core):
                def body():
                    from repro.xs1.behavioral import Compute

                    yield Compute(cost_per_item)
                    job.results[index] = function(item)
                    job.completed += 1
                return body()
            return factory

        for index, item in enumerate(items):
            handle = self.submit(make_task(index, item), name=f"map.{index}")
            job.handles.append(handle)
        return job

    # -- checkpointing (see repro.checkpoint) ------------------------------------

    def snapshot_state(self) -> dict:
        """Canonical runtime state: the task table and healing ledger.

        Task bodies are generators and cannot be serialized; the table
        captures each task's placement, restart generation and progress,
        which a restore replay must reproduce exactly.
        """
        return {
            "next_task_id": self._next_task_id,
            "upload_busy_until_ps": self._upload_busy_until_ps,
            "fault_budget": self.fault_budget,
            "replacements": self.replacements,
            "failed_cores": [core.node_id for core in self.failed_cores],
            "tasks": [
                {
                    "task_id": task.task_id,
                    "node": task.core.node_id,
                    "started": task.started,
                    "done": task.done,
                    "restarts": task.restarts,
                    "start_time_ps": task.start_time_ps,
                    "instructions": (
                        task.thread.instructions_executed
                        if task.thread is not None else None
                    ),
                }
                for task in self.tasks
            ],
        }

    def restore_state(self, state: dict) -> None:
        """Verify the replayed runtime against checkpointed state."""
        from repro.sim.state import verify_state

        verify_state(self.snapshot_state(), state, "nos")

    # -- introspection ---------------------------------------------------------------

    @property
    def all_done(self) -> bool:
        """True when every submitted task has completed."""
        return all(task.done for task in self.tasks)

    def placement_histogram(self) -> dict[int, int]:
        """node id -> number of tasks placed there."""
        histogram: dict[int, int] = {}
        for task in self.tasks:
            histogram[task.core.node_id] = histogram.get(task.core.node_id, 0) + 1
        return histogram
