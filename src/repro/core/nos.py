"""nOS-lite: a nano-sized distributed task runtime (paper ref. [3]).

The Swallow project built "nOS: a nano-sized distributed operating
system for resource optimisation on many-core systems".  This module is
a lightweight reproduction of its placement/boot role: tasks are
submitted centrally, placed by the active :class:`SchedulerPolicy`
(least-loaded by default, optionally pinned), and — when the machine
has an Ethernet bridge — charged the realistic program-upload time
before they start.

Placement, orphan re-placement after a core death, and graceful
degradation all route through the pluggable policy layer of
:mod:`repro.nos.policies`; tasks may carry real-time metadata
(``period_us``, ``deadline_us``, ``wcet_cycles``, ``criticality``)
which feeds deadline accounting (``nos.deadline_*`` metrics, span
annotations) and the DVFS policies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generator

from repro.core.platform import SwallowSystem
from repro.network.ethernet import EthernetBridge
from repro.nos.policies import DVFSPolicy, LeastLoadedPolicy, SchedulerPolicy
from repro.sim import us
from repro.xs1.assembler import Program
from repro.xs1.behavioral import BehavioralThread
from repro.xs1.core import XCore
from repro.xs1.errors import ResourceError
from repro.xs1.thread import HardwareThread, IsaThread


@dataclass
class MapJob:
    """A parallel-map collective in flight."""

    expected: int
    completed: int = 0
    handles: list["TaskHandle"] = field(default_factory=list)
    results: dict = field(default_factory=dict)

    @property
    def done(self) -> bool:
        """All items evaluated."""
        return self.completed == self.expected

    def ordered_results(self) -> list:
        """Results in submission order (job must be done)."""
        if not self.done:
            raise RuntimeError(
                f"map job incomplete: {self.completed}/{self.expected}"
            )
        return [self.results[i] for i in range(self.expected)]


@dataclass
class TaskHandle:
    """A submitted task."""

    task_id: int
    core: XCore
    thread: HardwareThread | None = None
    start_time_ps: int | None = None
    #: How often the task has been restarted on a new core after its
    #: previous core died mid-run (see :meth:`NanoOS.handle_core_failure`).
    restarts: int = 0
    #: Rebuilds the task's thread on a given core — kept so the runtime
    #: can restart the task from scratch after a core failure.
    spawn_fn: Callable[[XCore], HardwareThread] | None = None
    #: Code size charged per (re-)upload over the Ethernet bridge.
    code_bits: int = 0
    #: Causal span charged for this task's work (when the runtime was
    #: built with a span recorder).  Restarts keep the same span, so a
    #: healed task's energy stays attributed across cores.
    span: object | None = None
    #: Real-time metadata (all optional): activation period, relative
    #: deadline and worst-case execution budget in core clock cycles.
    period_us: float | None = None
    deadline_us: float | None = None
    wcet_cycles: int | None = None
    #: Shedding priority under graceful degradation: lower criticality
    #: is shed first (ties broken on task id).
    criticality: int = 0
    #: Absolute deadline (ps), fixed at submission time.
    deadline_ps: int | None = None
    #: When the task's body ran to completion (ps).
    finish_time_ps: int | None = None
    #: True once graceful degradation dropped this task.
    shed: bool = False

    @property
    def started(self) -> bool:
        """True once the task occupies a hardware thread."""
        return self.thread is not None

    @property
    def done(self) -> bool:
        """True when the task has run to completion."""
        return self.thread is not None and self.thread.halted


class NanoOS:
    """Central task placement over a Swallow machine."""

    def __init__(
        self,
        system: SwallowSystem,
        bridge: EthernetBridge | None = None,
        fault_budget: int | None = None,
        spans: bool = False,
        policy: SchedulerPolicy | None = None,
        dvfs: DVFSPolicy | None = None,
    ):
        self.system = system
        self.bridge = bridge
        #: With ``spans=True`` every submitted behavioural task gets a
        #: causal span (child of one ``nos`` root span) on the system's
        #: span recorder, feeding per-task energy attribution.
        self.span_root = None
        if spans:
            recorder = system.spans()
            self.span_root = recorder.span("nos")
        self._next_task_id = 0
        self.tasks: list[TaskHandle] = []
        self._upload_busy_until_ps = 0
        #: Maximum number of core deaths the runtime agrees to heal
        #: (FEST-style k-fault budget); ``None`` means unbounded.
        self.fault_budget = fault_budget
        self.failed_cores: list[XCore] = []
        #: Tasks restarted on a survivor core after their core died.
        self.replacements = 0
        #: Placement/degradation strategy (least-loaded by default —
        #: the pre-policy behaviour, bit for bit).
        self.policy = policy if policy is not None else LeastLoadedPolicy()
        #: Optional frequency-scaling policy driven by the task lifecycle.
        self.dvfs = dvfs
        #: Tasks dropped by graceful degradation, in shed order.
        self.shed_tasks: list[TaskHandle] = []
        if dvfs is not None:
            dvfs.attach(self)

    # -- placement ---------------------------------------------------------------

    def _load(self, core: XCore) -> int:
        return core.live_threads + sum(
            1 for t in self.tasks if t.core is core and not t.started
        )

    def _candidates(self) -> list[XCore]:
        """Healthy cores with a spare hardware thread, in node order."""
        healthy = [c for c in self.system.cores if not c.failed]
        if not healthy:
            raise ResourceError("every core in the machine has failed")
        candidates = [
            c for c in healthy if self._load(c) < c.config.max_threads
        ]
        if not candidates:
            raise ResourceError("no free hardware thread anywhere in the machine")
        return candidates

    def pick_core(
        self,
        pin: XCore | None = None,
        handle: TaskHandle | None = None,
    ) -> XCore:
        """Policy placement (least-loaded, node-id tie-break, by default)."""
        if pin is not None:
            if pin.failed:
                raise ResourceError(f"{pin.name}: core has failed")
            if self._load(pin) >= pin.config.max_threads:
                raise ResourceError(f"{pin.name}: no free hardware thread")
            return pin
        return self.policy.choose(self, self._candidates(), handle)

    # -- submission ---------------------------------------------------------------

    def submit(
        self,
        task_factory: Callable[[XCore], Generator],
        pin: XCore | None = None,
        name: str | None = None,
        period_us: float | None = None,
        deadline_us: float | None = None,
        wcet_cycles: int | None = None,
        criticality: int = 0,
    ) -> TaskHandle:
        """Submit a behavioural task; ``task_factory(core)`` builds its body.

        With a bridge attached, the task starts only after its (nominal
        1 KiB) code upload crosses the Ethernet at 80 Mbit/s.  The
        real-time metadata is optional: a relative ``deadline_us``
        (defaulting to ``period_us`` when only a period is given) fixes
        the task's absolute deadline at submission time, and
        ``wcet_cycles`` budgets it for the DVFS policies.
        """
        handle = TaskHandle(
            task_id=self._next_task_id,
            core=self.system.cores[0],  # placeholder until placed below
            period_us=period_us,
            deadline_us=deadline_us,
            wcet_cycles=wcet_cycles,
            criticality=criticality,
        )
        relative_us = deadline_us if deadline_us is not None else period_us
        if relative_us is not None:
            handle.deadline_ps = self.system.sim.now + us(relative_us)
        handle.core = self.pick_core(pin, handle)
        self._next_task_id += 1
        self.tasks.append(handle)
        self.policy.on_submit(self, handle)
        task_name = name or f"nos.t{handle.task_id}"
        if self.span_root is not None:
            handle.span = self.span_root.child(task_name)
            handle.span.annotate("policy", self.policy.name)

        def spawn(on_core: XCore) -> HardwareThread:
            thread = BehavioralThread(
                on_core,
                self._instrument(handle, task_factory(on_core)),
                name=task_name,
            )
            if handle.span is not None:
                if handle.span.node_id is None:
                    handle.span.node_id = on_core.node_id
                handle.span.begin(self.system.sim.now)
                # A restart after a core death re-opens the span the
                # dying thread closed; it finally closes at real
                # completion.
                handle.span.end_ps = None
                thread.span = handle.span
            return thread

        handle.spawn_fn = spawn
        handle.code_bits = 8 * 1024
        self._schedule_start(handle)
        if self.dvfs is not None:
            self.dvfs.on_task_submitted(self, handle)
        return handle

    def _instrument(self, handle: TaskHandle, body: Generator) -> Generator:
        """Wrap a task body to observe normal completion.

        Adds zero simulated operations: the bookkeeping runs when the
        body's final ``StopIteration`` propagates.  A body killed by a
        core death never reaches it — only real completion counts.
        """
        yield from body
        self._task_finished(handle)

    def _task_finished(self, handle: TaskHandle) -> None:
        handle.finish_time_ps = self.system.sim.now
        if handle.span is not None and handle.deadline_ps is not None:
            hit = handle.finish_time_ps <= handle.deadline_ps
            handle.span.annotate("deadline", "hit" if hit else "miss")
        if self.dvfs is not None:
            self.dvfs.on_task_finished(self, handle)

    def submit_program(
        self,
        program: Program,
        entry: str | int = "start",
        pin: XCore | None = None,
        regs: dict[str, int] | None = None,
    ) -> TaskHandle:
        """Submit an assembled program; upload time scales with its size."""
        core = self.pick_core(pin)
        handle = TaskHandle(task_id=self._next_task_id, core=core)
        self._next_task_id += 1
        self.tasks.append(handle)

        def spawn(on_core: XCore) -> HardwareThread:
            return on_core.spawn(program, entry=entry, regs=regs)

        handle.spawn_fn = spawn
        handle.code_bits = 32 * len(program.instructions) + 8 * sum(
            len(block) for _, block in program.data_blocks
        )
        self._schedule_start(handle)
        return handle

    def _schedule_start(self, handle: TaskHandle) -> None:
        """Queue the task's (re-)upload and start it when the upload lands.

        The start event is tied to the task's restart generation: if the
        placed core dies before the upload completes, the task is re-placed
        with a fresh generation and the stale event becomes a no-op.
        """
        generation = handle.restarts

        def start() -> None:
            if handle.restarts != generation or handle.core.failed or handle.shed:
                return
            handle.thread = handle.spawn_fn(handle.core)
            handle.start_time_ps = self.system.sim.now

        self.system.sim.schedule_at(self._upload_slot(handle.code_bits), start)

    def _upload_slot(self, code_bits: int) -> int:
        """Reserve the bridge for one upload; uploads serialise at 80 Mbit/s."""
        now = self.system.sim.now
        if self.bridge is None:
            return now
        duration_ps = round(self.bridge.transfer_time_s(code_bits) * 1e12)
        start = max(now, self._upload_busy_until_ps)
        self._upload_busy_until_ps = start + duration_ps
        return self._upload_busy_until_ps

    # -- healing ---------------------------------------------------------------

    def handle_core_failure(self, core: XCore) -> list[TaskHandle]:
        """Kill ``core`` and restart its unfinished tasks on survivors.

        Orphans are collected *before* the core halts its threads —
        afterwards they would be indistinguishable from tasks that
        finished normally.  Each orphan restarts from scratch (its
        factory is re-run) on a policy-chosen surviving core, paying
        the upload time again.  Honours the :attr:`fault_budget`: past
        it (or when the policy itself calls the guarantee broken) the
        policy may *degrade gracefully* — shed chosen tasks and keep
        running; a policy that declines leaves the original behaviour,
        a :class:`ResourceError`, with no partial re-placement.
        Returns the re-placed handles.
        """
        if core in self.failed_cores:
            return []
        orphans = [
            t for t in self.tasks
            if t.core is core and not t.done and not t.shed
        ]
        budget_exhausted = (
            self.fault_budget is not None
            and len(self.failed_cores) >= self.fault_budget
        )
        if budget_exhausted or self.policy.wants_degrade(self):
            shed = self.policy.degrade(self, core, orphans)
            if shed is None:
                raise ResourceError(
                    f"fault budget exhausted: {len(self.failed_cores)} core"
                    f" failure(s) already healed, budget is {self.fault_budget}"
                )
            core.fail()
            self.failed_cores.append(core)
            for handle in shed:
                self._shed(handle)
            survivors = [t for t in orphans if not t.shed]
            for handle in survivors:
                self._replace(handle)
            return survivors
        core.fail()
        self.failed_cores.append(core)
        for handle in orphans:
            self._replace(handle)
        return orphans

    def _replace(self, handle: TaskHandle) -> None:
        """Restart one orphan on a policy-chosen surviving core."""
        handle.core = self.policy.replacement(self, self._candidates(), handle)
        handle.thread = None
        handle.start_time_ps = None
        handle.restarts += 1
        self.replacements += 1
        self._schedule_start(handle)

    def _shed(self, handle: TaskHandle) -> None:
        """Drop one task under graceful degradation (deterministic ledger)."""
        handle.thread = None
        handle.start_time_ps = None
        handle.shed = True
        self.shed_tasks.append(handle)
        if handle.span is not None:
            handle.span.annotate("deadline", "shed")
            handle.span.finish(self.system.sim.now)

    # -- collectives -----------------------------------------------------------------

    def map(
        self,
        function: Callable,
        items: list,
        cost_per_item: int = 100,
    ) -> "MapJob":
        """Parallel map: one task per item, least-loaded placement.

        ``function`` is evaluated on the simulated core after
        ``cost_per_item`` instructions of modelled work, so the job has
        realistic timing and energy.  Results land in submission order in
        :attr:`MapJob.results` once the simulation has run.
        """
        job = MapJob(expected=len(items))

        def make_task(index, item):
            def factory(core):
                def body():
                    from repro.xs1.behavioral import Compute

                    yield Compute(cost_per_item)
                    job.results[index] = function(item)
                    job.completed += 1
                return body()
            return factory

        for index, item in enumerate(items):
            handle = self.submit(make_task(index, item), name=f"map.{index}")
            job.handles.append(handle)
        return job

    # -- deadline accounting -----------------------------------------------------

    def deadline_status(self, handle: TaskHandle) -> str | None:
        """``hit`` / ``miss`` / ``shed`` / ``pending`` (None: no deadline).

        A still-running task past its deadline already counts as a miss
        — finishing later cannot un-miss it.
        """
        if handle.deadline_ps is None:
            return None
        if handle.shed:
            return "shed"
        if handle.finish_time_ps is not None:
            if handle.finish_time_ps <= handle.deadline_ps:
                return "hit"
            return "miss"
        if self.system.sim.now > handle.deadline_ps:
            return "miss"
        return "pending"

    def deadline_counts(self) -> dict[str, int]:
        """Deadline verdicts over the task table (fixed key order)."""
        counts = {"hit": 0, "miss": 0, "shed": 0, "pending": 0}
        for task in self.tasks:
            status = self.deadline_status(task)
            if status is not None:
                counts[status] += 1
        return counts

    def register_metrics(self, registry) -> None:
        """Publish runtime counters as lazily-read metric series."""
        policy = self.policy.name
        registry.counter_fn(
            "nos.deadline_hit", lambda: self.deadline_counts()["hit"],
            help="tasks that finished on or before their deadline",
            policy=policy,
        )
        registry.counter_fn(
            "nos.deadline_miss", lambda: self.deadline_counts()["miss"],
            help="tasks that finished late or are already past due",
            policy=policy,
        )
        registry.counter_fn(
            "nos.deadline_shed", lambda: self.deadline_counts()["shed"],
            help="tasks dropped by graceful degradation",
            policy=policy,
        )
        registry.counter_fn(
            "nos.replacements", lambda: self.replacements,
            help="orphans restarted on a survivor core",
            policy=policy,
        )
        registry.counter_fn(
            "nos.core_failures", lambda: len(self.failed_cores),
            help="core deaths the runtime has absorbed",
            policy=policy,
        )
        if self.dvfs is not None:
            registry.counter_fn(
                "nos.dvfs_steps", lambda: self.dvfs.steps,
                help="operating-point changes applied by the DVFS policy",
                policy=self.dvfs.name,
            )

    # -- checkpointing (see repro.checkpoint) ------------------------------------

    def snapshot_state(self) -> dict:
        """Canonical runtime state: the task table and healing ledger.

        Task bodies are generators and cannot be serialized; the table
        captures each task's placement, restart generation and progress,
        which a restore replay must reproduce exactly.
        """
        return {
            "next_task_id": self._next_task_id,
            "upload_busy_until_ps": self._upload_busy_until_ps,
            "fault_budget": self.fault_budget,
            "replacements": self.replacements,
            "failed_cores": [core.node_id for core in self.failed_cores],
            "policy": self.policy.snapshot_state(),
            "dvfs": (
                self.dvfs.snapshot_state() if self.dvfs is not None else None
            ),
            "shed": [task.task_id for task in self.shed_tasks],
            "tasks": [
                {
                    "task_id": task.task_id,
                    "node": task.core.node_id,
                    "started": task.started,
                    "done": task.done,
                    "restarts": task.restarts,
                    "start_time_ps": task.start_time_ps,
                    "deadline_ps": task.deadline_ps,
                    "finish_time_ps": task.finish_time_ps,
                    "criticality": task.criticality,
                    "shed": task.shed,
                    "instructions": (
                        task.thread.instructions_executed
                        if task.thread is not None else None
                    ),
                }
                for task in self.tasks
            ],
        }

    def restore_state(self, state: dict) -> None:
        """Verify the replayed runtime against checkpointed state."""
        from repro.sim.state import verify_state

        verify_state(self.snapshot_state(), state, "nos")

    # -- introspection ---------------------------------------------------------------

    @property
    def all_done(self) -> bool:
        """True when every submitted task is terminal (completed or shed)."""
        return all(task.done or task.shed for task in self.tasks)

    def placement_histogram(self) -> dict[int, int]:
        """node id -> number of tasks placed there."""
        histogram: dict[int, int] = {}
        for task in self.tasks:
            histogram[task.core.node_id] = histogram.get(task.core.node_id, 0) + 1
        return histogram
