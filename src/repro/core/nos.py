"""nOS-lite: a nano-sized distributed task runtime (paper ref. [3]).

The Swallow project built "nOS: a nano-sized distributed operating
system for resource optimisation on many-core systems".  This module is
a lightweight reproduction of its placement/boot role: tasks are
submitted centrally, placed onto the least-loaded cores (optionally
pinned), and — when the machine has an Ethernet bridge — charged the
realistic program-upload time before they start.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator

from repro.core.platform import SwallowSystem
from repro.network.ethernet import EthernetBridge
from repro.xs1.assembler import Program
from repro.xs1.behavioral import BehavioralThread
from repro.xs1.core import XCore
from repro.xs1.errors import ResourceError
from repro.xs1.thread import HardwareThread, IsaThread


@dataclass
class MapJob:
    """A parallel-map collective in flight."""

    expected: int
    completed: int = 0
    handles: list["TaskHandle"] = None
    results: dict = None

    def __post_init__(self) -> None:
        self.handles = []
        self.results = {}

    @property
    def done(self) -> bool:
        """All items evaluated."""
        return self.completed == self.expected

    def ordered_results(self) -> list:
        """Results in submission order (job must be done)."""
        if not self.done:
            raise RuntimeError(
                f"map job incomplete: {self.completed}/{self.expected}"
            )
        return [self.results[i] for i in range(self.expected)]


@dataclass
class TaskHandle:
    """A submitted task."""

    task_id: int
    core: XCore
    thread: HardwareThread | None = None
    start_time_ps: int | None = None

    @property
    def started(self) -> bool:
        """True once the task occupies a hardware thread."""
        return self.thread is not None

    @property
    def done(self) -> bool:
        """True when the task has run to completion."""
        return self.thread is not None and self.thread.halted


class NanoOS:
    """Central task placement over a Swallow machine."""

    def __init__(self, system: SwallowSystem, bridge: EthernetBridge | None = None):
        self.system = system
        self.bridge = bridge
        self._next_task_id = 0
        self.tasks: list[TaskHandle] = []
        self._upload_busy_until_ps = 0

    # -- placement ---------------------------------------------------------------

    def _load(self, core: XCore) -> int:
        return core.live_threads + sum(
            1 for t in self.tasks if t.core is core and not t.started
        )

    def pick_core(self, pin: XCore | None = None) -> XCore:
        """Least-loaded placement (stable tie-break on node id)."""
        if pin is not None:
            if self._load(pin) >= pin.config.max_threads:
                raise ResourceError(f"{pin.name}: no free hardware thread")
            return pin
        candidates = sorted(
            self.system.cores, key=lambda c: (self._load(c), c.node_id)
        )
        best = candidates[0]
        if self._load(best) >= best.config.max_threads:
            raise ResourceError("no free hardware thread anywhere in the machine")
        return best

    # -- submission ---------------------------------------------------------------

    def submit(
        self,
        task_factory: Callable[[XCore], Generator],
        pin: XCore | None = None,
        name: str | None = None,
    ) -> TaskHandle:
        """Submit a behavioural task; ``task_factory(core)`` builds its body.

        With a bridge attached, the task starts only after its (nominal
        1 KiB) code upload crosses the Ethernet at 80 Mbit/s.
        """
        core = self.pick_core(pin)
        handle = TaskHandle(task_id=self._next_task_id, core=core)
        self._next_task_id += 1
        self.tasks.append(handle)

        def start() -> None:
            handle.thread = BehavioralThread(
                core, task_factory(core), name=name or f"nos.t{handle.task_id}"
            )
            handle.start_time_ps = self.system.sim.now

        self.system.sim.schedule_at(self._upload_slot(code_bits=8 * 1024), start)
        return handle

    def submit_program(
        self,
        program: Program,
        entry: str | int = "start",
        pin: XCore | None = None,
        regs: dict[str, int] | None = None,
    ) -> TaskHandle:
        """Submit an assembled program; upload time scales with its size."""
        core = self.pick_core(pin)
        handle = TaskHandle(task_id=self._next_task_id, core=core)
        self._next_task_id += 1
        self.tasks.append(handle)
        code_bits = 32 * len(program.instructions) + 8 * sum(
            len(block) for _, block in program.data_blocks
        )

        def start() -> None:
            handle.thread = core.spawn(program, entry=entry, regs=regs)
            handle.start_time_ps = self.system.sim.now

        self.system.sim.schedule_at(self._upload_slot(code_bits), start)
        return handle

    def _upload_slot(self, code_bits: int) -> int:
        """Reserve the bridge for one upload; uploads serialise at 80 Mbit/s."""
        now = self.system.sim.now
        if self.bridge is None:
            return now
        duration_ps = round(self.bridge.transfer_time_s(code_bits) * 1e12)
        start = max(now, self._upload_busy_until_ps)
        self._upload_busy_until_ps = start + duration_ps
        return self._upload_busy_until_ps

    # -- collectives -----------------------------------------------------------------

    def map(
        self,
        function: Callable,
        items: list,
        cost_per_item: int = 100,
    ) -> "MapJob":
        """Parallel map: one task per item, least-loaded placement.

        ``function`` is evaluated on the simulated core after
        ``cost_per_item`` instructions of modelled work, so the job has
        realistic timing and energy.  Results land in submission order in
        :attr:`MapJob.results` once the simulation has run.
        """
        job = MapJob(expected=len(items))

        def make_task(index, item):
            def factory(core):
                def body():
                    from repro.xs1.behavioral import Compute

                    yield Compute(cost_per_item)
                    job.results[index] = function(item)
                    job.completed += 1
                return body()
            return factory

        for index, item in enumerate(items):
            handle = self.submit(make_task(index, item), name=f"map.{index}")
            job.handles.append(handle)
        return job

    # -- introspection ---------------------------------------------------------------

    @property
    def all_done(self) -> bool:
        """True when every submitted task has completed."""
        return all(task.done for task in self.tasks)

    def placement_histogram(self) -> dict[int, int]:
        """node id -> number of tasks placed there."""
        histogram: dict[int, int] = {}
        for task in self.tasks:
            histogram[task.core.node_id] = histogram.get(task.core.node_id, 0) + 1
        return histogram
