"""Checkpoint state plumbing shared by every stateful component.

The checkpoint subsystem (:mod:`repro.checkpoint`) walks the platform
calling ``snapshot_state()`` hooks, and — after a restore replay has
re-registered the schedulable state — calls ``restore_state()`` hooks to
reconcile each component against the bundle.  Restored state that must
have been reproduced by the replay is *verified* rather than injected;
this module provides the deep comparison those hooks share, reporting
the first diverging path so a mismatch pinpoints the component and field
instead of one opaque digest failure.
"""

from __future__ import annotations

from typing import Any


class StateMismatchError(RuntimeError):
    """A component's replayed state diverged from its checkpointed state."""


def verify_state(actual: Any, expected: Any, path: str = "state") -> None:
    """Deep-compare two state trees; raise on the first divergence.

    Both trees are canonical snapshot state: JSON-able nests of dicts,
    lists, strings, ints, floats, bools and None.  Floats must match
    exactly (the simulator is deterministic down to the last bit; a
    near-miss is still a diverged replay).
    """
    if isinstance(expected, dict):
        if not isinstance(actual, dict):
            raise StateMismatchError(
                f"{path}: expected a mapping, found {type(actual).__name__}"
            )
        for key in expected.keys() | actual.keys():
            if key not in actual:
                raise StateMismatchError(f"{path}.{key}: missing after restore")
            if key not in expected:
                raise StateMismatchError(f"{path}.{key}: not in checkpoint bundle")
            verify_state(actual[key], expected[key], f"{path}.{key}")
        return
    if isinstance(expected, (list, tuple)):
        if not isinstance(actual, (list, tuple)):
            raise StateMismatchError(
                f"{path}: expected a sequence, found {type(actual).__name__}"
            )
        if len(actual) != len(expected):
            raise StateMismatchError(
                f"{path}: length {len(actual)} != checkpointed {len(expected)}"
            )
        for index, (a, e) in enumerate(zip(actual, expected)):
            verify_state(a, e, f"{path}[{index}]")
        return
    # bool is an int subclass; require the exact type so True != 1 here.
    if type(actual) is not type(expected) or actual != expected:
        raise StateMismatchError(
            f"{path}: restored value {actual!r} != checkpointed {expected!r}"
        )
