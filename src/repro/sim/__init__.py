"""Discrete-event simulation kernel used by every Swallow subsystem."""

from repro.sim.engine import EventHandle, Process, SimulationError, Simulator
from repro.sim.state import StateMismatchError, verify_state
from repro.sim.time import (
    F_71MHZ,
    F_500MHZ,
    PS_PER_MS,
    PS_PER_NS,
    PS_PER_S,
    PS_PER_US,
    Frequency,
    ms,
    ns,
    seconds,
    to_ns,
    to_seconds,
    to_us,
    us,
)
from repro.sim.tracing import NullTracer, TraceRecord, TraceRecorder

__all__ = [
    "EventHandle",
    "F_500MHZ",
    "F_71MHZ",
    "Frequency",
    "NullTracer",
    "PS_PER_MS",
    "PS_PER_NS",
    "PS_PER_S",
    "PS_PER_US",
    "Process",
    "SimulationError",
    "Simulator",
    "StateMismatchError",
    "TraceRecord",
    "TraceRecorder",
    "ms",
    "ns",
    "seconds",
    "to_ns",
    "to_seconds",
    "to_us",
    "us",
    "verify_state",
]
