"""Discrete-event simulation engine.

A single global event queue ordered by (time, sequence number) drives every
component of the simulated Swallow system: core pipelines, network links,
switches and the energy-measurement ADC all schedule callbacks here.

The sequence number makes event ordering total and deterministic: events
scheduled earlier run earlier when timestamps tie, so a simulation is a
pure function of its configuration.
"""

from __future__ import annotations

import heapq
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter
from typing import TYPE_CHECKING, Any, Callable, Iterator

if TYPE_CHECKING:
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.profiling import SimProfile


class SimulationError(RuntimeError):
    """Raised for invalid scheduling or a wedged simulation."""


@dataclass
class KernelStats:
    """Process-wide kernel counters (all simulators, whole interpreter).

    The benchmark harness reads this to attribute events-per-second to
    each bench without instrumenting every ``Simulator`` it creates.

    ``events_replayed`` counts events re-executed inside a
    :func:`replay_window` — deterministic replay during a checkpoint
    restore or rollback.  Replay is reconstruction, not fresh work, so
    it is ledgered separately and never inflates events-per-second.
    """

    events_executed: int = 0
    events_replayed: int = 0


#: The interpreter-wide kernel ledger (see :class:`KernelStats`).
KERNEL_STATS = KernelStats()


@contextmanager
def replay_window() -> Iterator[None]:
    """Attribute kernel events executed inside the block to *replay*.

    Everything the block adds to ``KERNEL_STATS.events_executed`` is
    moved to ``KERNEL_STATS.events_replayed`` on exit, so profiles,
    heartbeats and the bench harness can report replayed events
    separately instead of counting reconstruction as fresh throughput.
    """
    before = KERNEL_STATS.events_executed
    try:
        yield
    finally:
        replayed = KERNEL_STATS.events_executed - before
        KERNEL_STATS.events_executed = before
        KERNEL_STATS.events_replayed += replayed


@dataclass(order=True)
class _QueuedEvent:
    time: int
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    executed: bool = field(default=False, compare=False)


class EventHandle:
    """Handle returned by :meth:`Simulator.schedule`; allows cancellation."""

    __slots__ = ("_event",)

    def __init__(self, event: _QueuedEvent):
        self._event = event

    @property
    def time(self) -> int:
        """Absolute firing time of the event, in picoseconds."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called before the event fired."""
        return self._event.cancelled

    @property
    def executed(self) -> bool:
        """Whether the event already fired."""
        return self._event.executed

    def cancel(self) -> bool:
        """Prevent the event from firing.  Idempotent.

        Cancelling an event that already fired — or a stale handle kept
        across a checkpoint restore, whose simulator no longer owns the
        event — is a safe no-op.  Returns True only when this call
        actually withdrew a pending event.
        """
        if self._event.executed or self._event.cancelled:
            return False
        self._event.cancelled = True
        return True


class Simulator:
    """The discrete-event kernel.

    Typical use::

        sim = Simulator()
        sim.schedule(ns(10), lambda: print("fired at", sim.now))
        sim.run()
    """

    def __init__(self) -> None:
        self._queue: list[_QueuedEvent] = []
        self._seq = 0
        self._now = 0
        self._events_processed = 0
        self._running = False
        self._queue_hwm = 0
        self._profiler = None

    @property
    def now(self) -> int:
        """Current simulation time in picoseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events executed so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of queued (non-cancelled) events."""
        return sum(1 for e in self._queue if not e.cancelled)

    @property
    def queue_depth_high_water(self) -> int:
        """The deepest the event queue has ever been (cancelled included)."""
        return self._queue_hwm

    def schedule(self, delay_ps: int, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to run ``delay_ps`` picoseconds from now."""
        if delay_ps < 0:
            raise SimulationError(f"cannot schedule in the past (delay {delay_ps} ps)")
        return self.schedule_at(self._now + delay_ps, callback)

    def schedule_at(self, time_ps: int, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at absolute time ``time_ps``."""
        if time_ps < self._now:
            raise SimulationError(
                f"cannot schedule at {time_ps} ps; simulation time is already {self._now} ps"
            )
        event = _QueuedEvent(time=time_ps, seq=self._seq, callback=callback)
        self._seq += 1
        heapq.heappush(self._queue, event)
        depth = len(self._queue)
        if depth > self._queue_hwm:
            self._queue_hwm = depth
        return EventHandle(event)

    def next_event_time(self) -> int | None:
        """Firing time of the next pending event, or None when idle.

        Skims cancelled events off the head of the queue as a side
        effect, so checkpoint policies can peek without perturbing the
        execution trajectory.
        """
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                if self._profiler is not None:
                    self._profiler.on_cancelled_pop()
                continue
            return head.time
        return None

    def step(self) -> bool:
        """Run the single next event.  Returns False if the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            profiler = self._profiler
            if event.cancelled:
                if profiler is not None:
                    profiler.on_cancelled_pop()
                continue
            self._now = event.time
            self._events_processed += 1
            event.executed = True
            if profiler is None:
                event.callback()
            elif profiler.on_event(event.callback):
                event.callback()
                profiler.after_event()
            else:
                event.callback()
            return True
        return False

    def run(self, max_events: int | None = None) -> int:
        """Run until the event queue drains (or ``max_events`` fire).

        Returns the number of events executed by this call.
        """
        if self._running:
            raise SimulationError("re-entrant call to Simulator.run()")
        self._running = True
        executed = 0
        try:
            if self._profiler is not None and max_events is None:
                executed = self._run_profiled()
            else:
                while self.step():
                    executed += 1
                    if max_events is not None and executed >= max_events:
                        break
        finally:
            self._running = False
            KERNEL_STATS.events_executed += executed
        return executed

    def _run_profiled(self) -> int:
        """Drain the queue with the profiler's hot path hoisted.

        Identical semantics to ``while self.step(): ...`` with a
        profiler installed, but every per-event attribute lookup (the
        queue, the profiler's key buffer, the sampling stride, the
        bound hook methods) is lifted into locals once.  The observed
        kernel's per-event cost is what the observer-overhead budget
        measures (benchmarks/bench_observer_overhead.py), and a Python
        attribute load per event is a measurable slice of it.  Keep in
        sync with step().
        """
        queue = self._queue
        profiler = self._profiler
        buf = profiler._buf  # retained across folds: _fold() clears in place
        stride = profiler._sample_every
        after_event = profiler.after_event
        on_cancelled = profiler.on_cancelled_pop
        heappop = heapq.heappop
        executed = 0
        next_sample = stride
        processed_before = self._events_processed
        events_before = profiler._events
        # Run-length state mirrors SimProfiler._rle_key/_rle_count so
        # step()-driven and run()-driven windows share one ledger.
        last_key = profiler._rle_key
        run_len = profiler._rle_count
        try:
            while queue:
                event = heappop(queue)
                if event.cancelled:
                    on_cancelled()
                    continue
                self._now = event.time
                event.executed = True
                executed += 1
                callback = event.callback
                try:
                    key = callback.__code__
                except AttributeError:
                    key = callback
                if key is last_key:
                    run_len += 1
                else:
                    if run_len:
                        buf.append((last_key, run_len))
                    last_key = key
                    run_len = 1
                if executed != next_sample:
                    callback()
                else:
                    next_sample = executed + stride
                    profiler._current_key = key
                    profiler._event_start = perf_counter()
                    callback()
                    after_event()
        finally:
            self._events_processed = processed_before + executed
            profiler._events = events_before + executed
            profiler._rle_key = last_key
            profiler._rle_count = run_len
        return executed

    def run_until(self, time_ps: int) -> int:
        """Run all events with timestamp <= ``time_ps``; advance time there.

        Returns the number of events executed by this call.
        """
        if time_ps < self._now:
            raise SimulationError(
                f"cannot run backwards to {time_ps} ps from {self._now} ps"
            )
        if self._running:
            raise SimulationError("re-entrant call to Simulator.run_until()")
        self._running = True
        executed = 0
        try:
            while self._queue:
                head = self._queue[0]
                if head.cancelled:
                    heapq.heappop(self._queue)
                    if self._profiler is not None:
                        self._profiler.on_cancelled_pop()
                    continue
                if head.time > time_ps:
                    break
                self.step()
                executed += 1
        finally:
            self._running = False
            KERNEL_STATS.events_executed += executed
        self._now = max(self._now, time_ps)
        return executed

    def run_for(self, duration_ps: int) -> int:
        """Run for ``duration_ps`` picoseconds of simulated time."""
        return self.run_until(self._now + duration_ps)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    @contextmanager
    def profile(self, tracer=None, **profiler_options: Any) -> "Iterator[SimProfile]":
        """Profile the simulator for the duration of a ``with`` block.

        Yields a :class:`~repro.obs.profiling.SimProfile` that is filled
        in as events execute and sealed (wall time measured) on exit::

            with sim.profile() as profile:
                sim.run()
            print(profile.render())

        Profiling nests: an inner ``profile()`` temporarily replaces the
        outer hook and restores it on exit.  With a ``tracer``
        (a :class:`~repro.sim.tracing.TraceRecorder`), the profile also
        reports how many trace records the recorder's ring buffer
        evicted during the window (``trace_dropped_events``), so
        flight-recorder truncation is visible instead of silent.
        Extra keyword arguments configure the
        :class:`~repro.obs.profiling.SimProfiler` (e.g.
        ``wall_sample_every`` for sparser wall-time sampling).
        """
        from repro.obs.profiling import SimProfiler

        profiler = SimProfiler(**profiler_options)
        profiler.attach_queue(self._queue)
        dropped_before = tracer.dropped if tracer is not None else 0
        seq_before = self._seq
        now_before = self._now
        previous = self._profiler
        self._profiler = profiler
        try:
            yield profiler.profile
        finally:
            self._profiler = previous
            profiler.finish(
                queue_pushes=self._seq - seq_before,
                queue_depth_high_water=self._queue_hwm,
                sim_time_ps=self._now - now_before,
            )
            if tracer is not None:
                profiler.profile.trace_dropped_events = (
                    tracer.dropped - dropped_before
                )

    def register_metrics(self, registry: "MetricsRegistry") -> None:
        """Publish kernel health series on a metrics registry.

        Series: ``sim.events_processed``, ``sim.pending_events``,
        ``sim.queue_depth_hwm`` and ``sim.now_ps`` — all collected
        lazily, so registration adds no per-event cost.
        """
        registry.counter_fn("sim.events_processed",
                            lambda: self._events_processed)
        registry.gauge_fn("sim.pending_events", lambda: self.pending_events)
        registry.gauge_fn("sim.queue_depth_hwm", lambda: self._queue_hwm)
        registry.gauge_fn("sim.now_ps", lambda: self._now)

    # ------------------------------------------------------------------
    # Checkpointing (see repro.checkpoint)
    # ------------------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Canonical kernel state for a checkpoint bundle.

        The event queue itself is *not* serialized — queued callbacks
        are arbitrary closures.  Restore works by schedulable-state
        re-registration: the workload is rebuilt and replayed to
        ``events_processed``, which reproduces the queue exactly (the
        kernel is a pure function of its configuration); this state dict
        is then the proof obligation the replayed kernel must meet.
        """
        return {
            "now_ps": self._now,
            "seq": self._seq,
            "events_processed": self._events_processed,
            "pending_events": self.pending_events,
            "queue_depth_hwm": self._queue_hwm,
        }

    def restore_state(self, state: dict) -> None:
        """Verify a replayed kernel against checkpointed state.

        Called after the restore replay has re-registered and re-run the
        schedulable state; every field must already match (the queue is
        rebuilt by replay, never injected), so a mismatch means the
        replay diverged — a non-deterministic workload or a corrupted
        bundle — and raises ``SimulationError``.
        """
        mine = self.snapshot_state()
        for key, expected in state.items():
            if mine.get(key) != expected:
                raise SimulationError(
                    f"checkpoint restore diverged: sim.{key} is "
                    f"{mine.get(key)!r}, bundle says {expected!r}"
                )


class Process:
    """A coroutine-style process on top of the event kernel.

    The generator yields integer delays in picoseconds; the kernel resumes
    it after each delay.  This gives components with sequential behaviour
    (traffic generators, the measurement ADC, behavioural threads) a
    straight-line coding style::

        def body():
            yield ns(100)      # wait 100 ns
            do_something()
            yield ns(50)

        Process(sim, body())
    """

    def __init__(self, sim: Simulator, generator: Any, name: str = "process"):
        self._sim = sim
        self._generator = generator
        self.name = name
        self.finished = False
        self.result: Any = None
        sim.schedule(0, self._resume)

    def _resume(self) -> None:
        if self.finished:
            return
        try:
            delay = next(self._generator)
        except StopIteration as stop:
            self.finished = True
            self.result = getattr(stop, "value", None)
            return
        if not isinstance(delay, int) or delay < 0:
            raise SimulationError(
                f"process {self.name!r} yielded invalid delay {delay!r}"
            )
        self._sim.schedule(delay, self._resume)
