"""Time and frequency primitives for the Swallow simulator.

All simulation time is an integer count of **picoseconds**.  Integer time
keeps the simulator deterministic: two runs of the same configuration
produce bit-identical event orderings and traces, mirroring the
time-deterministic execution of the XS1-L hardware that the Swallow paper
builds on.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Picoseconds per common unit.
PS_PER_NS = 1_000
PS_PER_US = 1_000_000
PS_PER_MS = 1_000_000_000
PS_PER_S = 1_000_000_000_000


def ns(value: float) -> int:
    """Convert nanoseconds to integer picoseconds (rounded)."""
    return round(value * PS_PER_NS)


def us(value: float) -> int:
    """Convert microseconds to integer picoseconds (rounded)."""
    return round(value * PS_PER_US)


def ms(value: float) -> int:
    """Convert milliseconds to integer picoseconds (rounded)."""
    return round(value * PS_PER_MS)


def seconds(value: float) -> int:
    """Convert seconds to integer picoseconds (rounded)."""
    return round(value * PS_PER_S)


def to_ns(ps: int) -> float:
    """Convert picoseconds to nanoseconds as a float (for reporting)."""
    return ps / PS_PER_NS


def to_us(ps: int) -> float:
    """Convert picoseconds to microseconds as a float (for reporting)."""
    return ps / PS_PER_US


def to_seconds(ps: int) -> float:
    """Convert picoseconds to seconds as a float (for reporting)."""
    return ps / PS_PER_S


@dataclass(frozen=True)
class Frequency:
    """An exact clock frequency.

    The clock period is the integer number of picoseconds nearest to
    ``1e12 / hz``; for the frequencies Swallow uses (multiples of 1 MHz
    up to 500 MHz) the common cases (500 MHz -> 2000 ps, 250 MHz ->
    4000 ps, 125 MHz -> 8000 ps) are exact.
    """

    hz: int

    def __post_init__(self) -> None:
        if self.hz <= 0:
            raise ValueError(f"frequency must be positive, got {self.hz}")

    @classmethod
    def mhz(cls, value: float) -> "Frequency":
        """Build a frequency from a MHz value."""
        return cls(round(value * 1_000_000))

    @property
    def megahertz(self) -> float:
        """The frequency in MHz (float, for reporting and power models)."""
        return self.hz / 1_000_000

    @property
    def period_ps(self) -> int:
        """The clock period in integer picoseconds."""
        return max(1, round(PS_PER_S / self.hz))

    def cycles_to_ps(self, cycles: int) -> int:
        """Duration of ``cycles`` clock cycles, in picoseconds."""
        if cycles < 0:
            raise ValueError(f"cycle count must be non-negative, got {cycles}")
        return cycles * self.period_ps

    def ps_to_cycles(self, ps: int) -> int:
        """Number of whole clock cycles elapsed in ``ps`` picoseconds."""
        if ps < 0:
            raise ValueError(f"duration must be non-negative, got {ps}")
        return ps // self.period_ps

    def __str__(self) -> str:
        return f"{self.megahertz:g} MHz"


#: Swallow's maximum core/network clock.
F_500MHZ = Frequency(500_000_000)
#: Lowest frequency point used in the paper's scaling experiments (Fig. 3/4).
F_71MHZ = Frequency(71_000_000)
