"""Event tracing.

Every observable action in the simulator (instruction issue, token on a
link, route open/close, ADC sample) can be recorded as a trace record.
Traces serve three purposes:

* debugging and the worked examples;
* the determinism invariant (identical configs => identical trace digests),
  which stands in for the hardware's time-deterministic execution; and
* post-hoc analysis (latency and bandwidth measurements in the benches).
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator


@dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence."""

    time_ps: int
    source: str
    kind: str
    detail: tuple[Any, ...] = ()

    def __str__(self) -> str:
        detail = " ".join(str(d) for d in self.detail)
        return f"[{self.time_ps:>12} ps] {self.source:<24} {self.kind} {detail}".rstrip()


class TraceRecorder:
    """Collects :class:`TraceRecord` objects, optionally filtered by kind.

    A bounded recorder is a *flight recorder*: when ``capacity`` records
    are held and a new one arrives, the **oldest** record is discarded so
    the trace always ends with the most recent activity (the part you
    want when something goes wrong at the end of a long run).  Every
    discard increments :attr:`dropped`, and ``repr()``/stats surface the
    count so truncation is never silent.
    """

    def __init__(self, kinds: Iterable[str] | None = None, capacity: int | None = None):
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._kinds = set(kinds) if kinds is not None else None
        self._capacity = capacity
        # Records are held as raw (time_ps, source, kind, detail) tuples
        # and materialised into TraceRecord objects only on access: the
        # record() hot path runs once per traced occurrence, so a tuple
        # append keeps observer overhead within the profiler's budget
        # (see benchmarks/bench_observer_overhead.py).
        self._records: deque[tuple] = deque(maxlen=capacity)
        self._appended = 0

    @property
    def capacity(self) -> int | None:
        """Maximum records retained (None = unbounded)."""
        return self._capacity

    @property
    def dropped(self) -> int:
        """Ring-buffer evictions since creation (or the last clear()).

        Derived from the append count rather than tracked per call: the
        deque's ``maxlen`` already evicts the oldest record on append,
        so the hot path never branches on capacity.
        """
        return max(0, self._appended - len(self._records))

    def record(self, time_ps: int, source: str, kind: str, *detail: Any) -> None:
        """Append a record (subject to the kind filter and capacity).

        At capacity the oldest record is evicted (ring-buffer
        semantics) and :attr:`dropped` counts the eviction.
        """
        if self._kinds is not None and kind not in self._kinds:
            return
        self._appended += 1
        self._records.append((time_ps, source, kind, detail))

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return (TraceRecord(*raw) for raw in self._records)

    def __getitem__(self, index: int) -> TraceRecord:
        return TraceRecord(*self._records[index])

    @property
    def records(self) -> list[TraceRecord]:
        """All collected records, in time order."""
        return [TraceRecord(*raw) for raw in self._records]

    def filter(
        self,
        kind: str | None = None,
        source: str | None = None,
        predicate: Callable[[TraceRecord], bool] | None = None,
    ) -> list[TraceRecord]:
        """Records matching all the given criteria."""
        out = []
        for raw in self._records:
            if kind is not None and raw[2] != kind:
                continue
            if source is not None and raw[1] != source:
                continue
            rec = TraceRecord(*raw)
            if predicate is not None and not predicate(rec):
                continue
            out.append(rec)
        return out

    def first(self, kind: str, source: str | None = None) -> TraceRecord | None:
        """The earliest record of ``kind`` (and optionally ``source``)."""
        matches = self.filter(kind=kind, source=source)
        return matches[0] if matches else None

    def last(self, kind: str, source: str | None = None) -> TraceRecord | None:
        """The latest record of ``kind`` (and optionally ``source``)."""
        matches = self.filter(kind=kind, source=source)
        return matches[-1] if matches else None

    def digest(self) -> str:
        """A stable hash of the full trace — the determinism fingerprint."""
        hasher = hashlib.sha256()
        for raw in self._records:
            hasher.update(repr(raw).encode())
        return hasher.hexdigest()

    def clear(self) -> None:
        """Drop all records (capacity and filters are kept)."""
        self._records.clear()
        self._appended = 0

    # -- export (see :mod:`repro.obs.trace_export`) -------------------------

    def to_jsonl(self) -> str:
        """The trace as JSON Lines (one object per record)."""
        from repro.obs.trace_export import to_jsonl

        return to_jsonl(self.records)

    def to_chrome_trace(self, spans=None) -> dict:
        """The trace as a Chrome trace-event document (Perfetto-loadable).

        Pass a :class:`~repro.obs.spans.SpanRecorder` to add span slices
        and cross-span flow arrows on a dedicated process.
        """
        from repro.obs.trace_export import to_chrome_trace

        return to_chrome_trace(self.records, spans=spans)

    def to_chrome_trace_json(self, spans=None) -> str:
        """The Chrome trace document as canonical, byte-stable JSON."""
        from repro.obs.trace_export import chrome_trace_json

        return chrome_trace_json(self.records, spans=spans)

    def register_metrics(self, registry) -> None:
        """Publish recorder health: the lazy ``trace.dropped_events``
        counter (ring-buffer evictions) and ``trace.records`` gauge."""
        registry.counter_fn("trace.dropped_events", lambda: self.dropped)
        registry.gauge_fn("trace.records", lambda: len(self._records))

    def stats(self) -> dict[str, int]:
        """Recorder health: records held, capacity and drop count."""
        return {
            "records": len(self._records),
            "capacity": -1 if self._capacity is None else self._capacity,
            "dropped": self.dropped,
        }

    def __repr__(self) -> str:
        capacity = "inf" if self._capacity is None else self._capacity
        return (
            f"<TraceRecorder {len(self._records)}/{capacity} records, "
            f"{self.dropped} dropped>"
        )


class NullTracer(TraceRecorder):
    """A recorder that drops everything; the default when tracing is off."""

    def __init__(self) -> None:
        super().__init__(kinds=())

    def record(self, time_ps: int, source: str, kind: str, *detail: Any) -> None:
        """Discard the record."""
        return
