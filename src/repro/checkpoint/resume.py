"""Resumable runs: checkpointed execution, restore, rollback recovery.

:class:`ResumableRun` drives a rebuildable workload one kernel event at
a time, capturing :class:`~repro.checkpoint.snapshot.Snapshot` bundles
at the policy's boundaries.  Because it peeks the queue
(:meth:`Simulator.next_event_time`) instead of advancing the clock to a
boundary, the checkpointed run executes the exact same event sequence
as an uninterrupted one — checkpointing is observation, never
perturbation.

Three ways a run ends:

* **completed** — the queue drained; the final report is byte-identical
  to an uninterrupted run of the same configuration.
* **killed** — ``kill_after_events`` was reached mid-run (simulating a
  crash); resume later with :meth:`ResumableRun.resume`, which rebuilds
  the workload from the bundle's setup, replays to the captured event
  count, verifies every layer against the bundle, and continues.
* **rollback** — a :class:`~repro.core.watchdog.RollbackSignal` escaped
  the watchdog: the suspect fault (the most recent unmasked injection)
  is masked, the newest retained checkpoint *preceding* that fault's
  injection is replayed (or the run restarts from t=0 if none is old
  enough), and execution continues.  Masked injections still fire as
  events — preserving sequence-number allocation, hence the pre-fault
  trajectory — but take no action.

Every recovery action lands in a :class:`RecoveryReport` whose
canonical JSON is deterministic: the same configuration yields the
same ladder, byte for byte.
"""

from __future__ import annotations

import json

from repro.checkpoint.policy import CheckpointPolicy, CheckpointStore
from repro.checkpoint.snapshot import CheckpointError, Snapshot, canonical_json
from repro.checkpoint.workloads import RunContext, build_workload
from repro.core.watchdog import RollbackSignal
from repro.sim import us
from repro.sim.engine import KERNEL_STATS, replay_window


class RecoveryReport:
    """The canonical outcome record of a resumable run."""

    def __init__(self, payload: dict):
        self.payload = payload

    def to_dict(self) -> dict:
        """The report as plain data."""
        return self.payload

    def to_json(self) -> str:
        """Canonical JSON — byte-stable across identical runs."""
        return canonical_json(self.payload)

    def render(self) -> str:
        """A human-readable summary."""
        p = self.payload
        final = p["final"]
        lines = [
            f"recovery report: {p['outcome']}",
            f"  rollbacks         {p['rollbacks']}",
            f"  checkpoints       {p['checkpoints']}",
            f"  final time        {final['time_ps'] / 1e6:.3f} us",
            f"  events processed  {final['events_processed']}",
            f"  delivered         {final['delivered']}"
            + (" (intact)" if final["delivered_ok"] else ""),
        ]
        for attempt in p["attempts"]:
            masked = attempt["masked_fault"]
            resumed = attempt["resumed_from"]
            origin = (
                f"checkpoint @ {resumed['events']} events"
                if resumed is not None else "restart from t=0"
            )
            lines.append(
                f"  rollback #{attempt['rollback']}: task "
                f"{attempt['task_id']} stalled; masked "
                f"{masked['kind']}[{masked['index']}] @ "
                f"{masked['at_us']} us; {origin}"
            )
            for action in attempt["watchdog_actions"]:
                lines.append(
                    f"    watchdog {action['rung']} task "
                    f"{action['task_id']} ({action['cause']}) at "
                    f"{action['time_ps'] / 1e6:.3f} us"
                )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"<RecoveryReport {self.payload['outcome']} "
            f"rollbacks={self.payload['rollbacks']}>"
        )


class ResumableRun:
    """Drive a rebuildable workload with checkpoints and recovery."""

    def __init__(
        self,
        workload: str,
        params: dict | None = None,
        policy: CheckpointPolicy | None = None,
        store: CheckpointStore | None = None,
        max_rollbacks: int = 3,
    ):
        self.workload = workload
        self.params = dict(params or {})
        self.policy = policy
        self.store = store
        self.max_rollbacks = max_rollbacks
        self.context: RunContext = build_workload(workload, self.params)
        #: Retained snapshots, oldest first (bounded by the policy).
        self.snapshots: list[Snapshot] = []
        self.captures = 0
        self.rollbacks = 0
        self.attempts: list[dict] = []
        self.killed = False
        #: Events re-executed by deterministic replay (resume/rollback) —
        #: reconstruction, ledgered separately from fresh execution so
        #: profiles and heartbeats never report inflated events/sec.
        self.events_replayed = 0
        #: Fresh events executed by this run's drive loop.
        self.events_fresh = 0
        self._next_events_mark: int | None = None
        self._next_time_mark: int | None = None
        self._heartbeat = None
        self._beat_mark: int | None = None
        self._reset_marks()

    # -- setup record -------------------------------------------------------

    @property
    def setup(self) -> dict:
        """What a bundle must record to rebuild this run."""
        return {"workload": self.workload, "params": self.params}

    # -- checkpointing ------------------------------------------------------

    def _reset_marks(self) -> None:
        sim = self.context.system.sim
        if self.policy is not None and self.policy.every_events is not None:
            self._next_events_mark = (
                sim.events_processed + self.policy.every_events
            )
        else:
            self._next_events_mark = None
        if self.policy is not None and self.policy.every_us is not None:
            self._next_time_mark = sim.now + us(self.policy.every_us)
        else:
            self._next_time_mark = None

    def checkpoint(self) -> Snapshot:
        """Capture now; retain per policy; persist if a store is set."""
        snapshot = self.context.capture(setup=self.setup)
        self.captures += 1
        self.snapshots.append(snapshot)
        retain = self.policy.retain if self.policy is not None else 3
        del self.snapshots[:-retain]
        if self.store is not None:
            self.store.add(snapshot)
        return snapshot

    # -- the drive loop -----------------------------------------------------

    def _drive(self, kill_after_events: int | None = None) -> int:
        """Step the kernel, capturing at policy boundaries.

        Returns events executed by this call.  Stops when the queue
        drains or (setting :attr:`killed`) after ``kill_after_events``.
        """
        sim = self.context.system.sim
        executed = 0
        try:
            while True:
                head = sim.next_event_time()
                if head is None:
                    return executed
                if (
                    self._next_time_mark is not None
                    and head > self._next_time_mark
                ):
                    self.checkpoint()
                    while head > self._next_time_mark:
                        self._next_time_mark += us(self.policy.every_us)
                    continue
                if not sim.step():
                    return executed
                executed += 1
                self.events_fresh += 1
                heartbeat = self._heartbeat
                if (
                    heartbeat is not None
                    and self.events_fresh >= self._beat_mark
                ):
                    heartbeat.beat(
                        sim,
                        events=self.events_fresh,
                        events_replayed=self.events_replayed,
                        checkpoints=self.captures,
                    )
                    self._beat_mark += heartbeat.every_events
                if (
                    self._next_events_mark is not None
                    and sim.events_processed >= self._next_events_mark
                ):
                    self.checkpoint()
                    self._next_events_mark += self.policy.every_events
                if (
                    kill_after_events is not None
                    and executed >= kill_after_events
                    and sim.next_event_time() is not None
                ):
                    self.killed = True
                    return executed
        finally:
            KERNEL_STATS.events_executed += executed

    def run(
        self,
        kill_after_events: int | None = None,
        heartbeat=None,
    ) -> RecoveryReport:
        """Run to completion (or the kill point), recovering as needed.

        With a :class:`~repro.obs.perf.RunHeartbeat`, the drive loop
        emits a progress line every ``heartbeat.every_events`` fresh
        events (replayed events are reported separately, never counted
        as progress) and a final line when the run ends.
        """
        if heartbeat is not None:
            self._heartbeat = heartbeat
            self._beat_mark = self.events_fresh + heartbeat.every_events
        try:
            while True:
                try:
                    self._drive(kill_after_events)
                except RollbackSignal as signal:
                    if self.rollbacks >= self.max_rollbacks:
                        raise CheckpointError(
                            f"gave up after {self.rollbacks} rollbacks: "
                            f"{signal.reason}"
                        ) from signal
                    self._rollback(signal)
                    continue
                if self._heartbeat is not None:
                    self._heartbeat.beat(
                        self.context.system.sim,
                        events=self.events_fresh,
                        events_replayed=self.events_replayed,
                        checkpoints=self.captures,
                        final=True,
                    )
                return self.report("killed" if self.killed else "completed")
        finally:
            if self._heartbeat is not None:
                self._heartbeat.close()

    # -- rollback recovery --------------------------------------------------

    def _suspect_fault(self) -> int:
        """Index of the most recent unmasked injected fault."""
        campaign = self.context.campaign
        if campaign is None:
            raise CheckpointError("rollback signalled but no fault campaign")
        for index in reversed(campaign.injected):
            if index >= 0 and index not in campaign.masked:
                return index
        raise CheckpointError(
            "rollback signalled but every injected fault is already masked"
        )

    def _rollback(self, signal: RollbackSignal) -> None:
        campaign = self.context.campaign
        suspect = self._suspect_fault()
        spec = campaign.faults[suspect]
        inject_ps = us(spec.at_us)
        old_watchdog = self.context.watchdog
        # Only checkpoints strictly preceding the masked injection are
        # valid replay targets: at or after it, the masked trajectory
        # diverges from the captured one.
        self.snapshots = [
            snap for snap in self.snapshots if snap.time_ps < inject_ps
        ]
        base = self.snapshots[-1] if self.snapshots else None
        self.rollbacks += 1
        self.attempts.append({
            "rollback": self.rollbacks,
            "task_id": signal.task_id,
            "reason": signal.reason,
            "masked_fault": {
                "index": suspect,
                "kind": spec.kind,
                "at_us": spec.at_us,
            },
            "watchdog_actions": (
                [dict(action) for action in old_watchdog.actions]
                if old_watchdog is not None else []
            ),
            "resumed_from": (
                {"events": base.events_processed, "time_ps": base.time_ps}
                if base is not None else None
            ),
        })
        masked = sorted(set(campaign.masked) | {suspect})
        self.params = dict(self.params, masked=masked)
        self.context = build_workload(self.workload, self.params)
        if base is not None:
            self._replay_to(base)
        self._reset_marks()

    def _replay_to(self, snapshot: Snapshot) -> None:
        """Deterministically replay the fresh context to ``snapshot``.

        Replayed events are tagged as such in the process-wide kernel
        ledger (``KERNEL_STATS.events_replayed``) and in
        :attr:`events_replayed` — they reconstruct state the run already
        paid for, so they never count as fresh throughput.
        """
        sim = self.context.system.sim
        with replay_window():
            replayed = sim.run(max_events=snapshot.events_processed)
        self.events_replayed += replayed
        if replayed != snapshot.events_processed:
            raise CheckpointError(
                f"replay drained after {replayed} events; bundle was "
                f"captured at {snapshot.events_processed} — the rebuilt "
                f"workload does not match the one checkpointed"
            )
        self.context.verify(snapshot)

    # -- resume from a bundle ----------------------------------------------

    @classmethod
    def resume(
        cls,
        snapshot: Snapshot,
        policy: CheckpointPolicy | None = None,
        store: CheckpointStore | None = None,
        max_rollbacks: int = 3,
    ) -> "ResumableRun":
        """Rebuild, replay, and verify a run from a checkpoint bundle.

        The returned run sits exactly where the bundle was captured —
        every layer verified field-by-field — and continues
        byte-identically to a run that was never interrupted.
        """
        setup = snapshot.setup
        if not setup.get("workload"):
            raise CheckpointError(
                "bundle records no workload setup; it can verify a live "
                "system but cannot be resumed"
            )
        run = cls(
            setup["workload"],
            setup.get("params", {}),
            policy=policy,
            store=store,
            max_rollbacks=max_rollbacks,
        )
        run._replay_to(snapshot)
        run.snapshots.append(snapshot)
        run._reset_marks()
        return run

    # -- reporting ----------------------------------------------------------

    def report(self, outcome: str) -> RecoveryReport:
        """Build the deterministic recovery report."""
        context = self.context
        sim = context.system.sim
        campaign = context.campaign
        return RecoveryReport({
            "outcome": outcome,
            "rollbacks": self.rollbacks,
            "checkpoints": self.captures,
            "attempts": [dict(attempt) for attempt in self.attempts],
            "masked": sorted(campaign.masked) if campaign is not None else [],
            "final": {
                "time_ps": sim.now,
                "events_processed": sim.events_processed,
                "events_fresh": self.events_fresh,
                "events_replayed": self.events_replayed,
                "delivered": len(context.received),
                "delivered_ok": (
                    context.received == context.expected
                    if context.expected else None
                ),
                "watchdog_fired": (
                    context.watchdog.fired
                    if context.watchdog is not None else 0
                ),
            },
        })

    def final_report(self) -> dict:
        """The workload's canonical end-of-run document."""
        return self.context.final_report()

    def __repr__(self) -> str:
        return (
            f"<ResumableRun {self.workload!r} "
            f"checkpoints={self.captures} rollbacks={self.rollbacks}>"
        )
