"""Versioned, checksummed, deterministic system snapshots.

A :class:`Snapshot` is the canonical record of a whole platform at one
instant: event-kernel clock and counters, every core (threads, SRAM
digest, chanend buffers), the fabric (switch ports, link credits,
in-flight tokens), the bit-exact energy ledger, the NanoOS task table,
the fault campaign's RNG stream, and the watchdog's ladder journal —
each captured through that component's own ``snapshot_state()`` hook.

What a snapshot is **not** is a pickled process image.  Queued events
are closures and task bodies are live generators; neither serialises.
Restore therefore works by *schedulable-state re-registration*: the
workload is rebuilt from its recorded setup (see
:mod:`repro.checkpoint.workloads`) and deterministically replayed to
the captured event count — the kernel is a pure function of its
configuration, so the replay reproduces the queue through each
component's own scheduling logic.  The snapshot then becomes the proof
obligation: :meth:`Snapshot.verify` walks every hook and raises on the
first diverging field, so a resume either continues byte-identically
or fails loudly.

Bundles are canonical JSON (sorted keys, compact separators) carrying a
schema version and a SHA-256 content digest; :meth:`Snapshot.load`
rejects tampered or truncated bundles.  Binary content (SRAM images)
is represented by digest, keeping bundles small without weakening the
identity check.
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.core.nos import NanoOS
    from repro.core.platform import SwallowSystem
    from repro.core.watchdog import Watchdog
    from repro.faults.campaign import FaultCampaign

#: Bundle format version; bump on any incompatible payload change.
SCHEMA_VERSION = 1


class CheckpointError(RuntimeError):
    """Invalid bundle, unsupported schema, or an impossible restore."""


class BundleIntegrityError(CheckpointError):
    """The bundle's content digest does not match its payload."""


def canonical_json(payload) -> str:
    """Canonical serialisation: sorted keys, compact, byte-stable."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def content_digest(payload) -> str:
    """SHA-256 over the canonical JSON of ``payload``."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


class Snapshot:
    """One captured system state: versioned, digested, verifiable."""

    def __init__(self, payload: dict):
        self.payload = payload

    # -- capture ------------------------------------------------------------

    @classmethod
    def capture(
        cls,
        system: "SwallowSystem",
        campaign: "FaultCampaign | None" = None,
        nos: "NanoOS | None" = None,
        watchdog: "Watchdog | None" = None,
        governor: object | None = None,
        setup: dict | None = None,
    ) -> "Snapshot":
        """Capture the platform (and any runtime layers) right now.

        ``setup`` records how to rebuild the workload — typically
        ``{"workload": name, "params": {...}}`` — and is required for a
        bundle to be resumable; a setup-less snapshot can still verify.
        Capture never mutates the system (in particular it does not
        close energy-integration windows), so checkpointing cannot
        perturb the trajectory it is checkpointing.
        """
        state = {"system": system.snapshot_state()}
        if campaign is not None:
            state["campaign"] = campaign.snapshot_state()
        if nos is not None:
            state["nos"] = nos.snapshot_state()
        if watchdog is not None:
            state["watchdog"] = watchdog.snapshot_state()
        if governor is not None:
            state["governor"] = governor.snapshot_state()
        body = {
            "schema": SCHEMA_VERSION,
            "setup": setup or {},
            "state": state,
        }
        payload = dict(body)
        payload["digest"] = content_digest(body)
        return cls(payload)

    # -- accessors ----------------------------------------------------------

    @property
    def schema(self) -> int:
        """Bundle format version."""
        return self.payload["schema"]

    @property
    def digest(self) -> str:
        """SHA-256 content digest of the bundle body."""
        return self.payload["digest"]

    @property
    def setup(self) -> dict:
        """The recorded workload setup (empty if not resumable)."""
        return self.payload["setup"]

    @property
    def state(self) -> dict:
        """The captured state tree."""
        return self.payload["state"]

    @property
    def events_processed(self) -> int:
        """Kernel event count at capture — the replay target."""
        return self.state["system"]["sim"]["events_processed"]

    @property
    def time_ps(self) -> int:
        """Simulation clock at capture."""
        return self.state["system"]["sim"]["now_ps"]

    # -- serialisation ------------------------------------------------------

    def to_json(self) -> str:
        """The bundle as canonical JSON."""
        return canonical_json(self.payload)

    def save(self, path) -> None:
        """Write the bundle to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    @classmethod
    def from_json(cls, text: str) -> "Snapshot":
        """Parse and validate a bundle (schema + integrity digest)."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise CheckpointError(f"unparseable bundle: {error}") from error
        if not isinstance(payload, dict) or "schema" not in payload:
            raise CheckpointError("not a checkpoint bundle (no schema field)")
        if payload["schema"] != SCHEMA_VERSION:
            raise CheckpointError(
                f"unsupported bundle schema {payload['schema']!r}; "
                f"this build reads schema {SCHEMA_VERSION}"
            )
        recorded = payload.get("digest")
        body = {k: v for k, v in payload.items() if k != "digest"}
        actual = content_digest(body)
        if recorded != actual:
            raise BundleIntegrityError(
                f"bundle digest mismatch: recorded {recorded!r}, "
                f"content hashes to {actual!r}"
            )
        return cls(payload)

    @classmethod
    def load(cls, path) -> "Snapshot":
        """Read and validate a bundle from ``path``."""
        with open(path, encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    # -- verification -------------------------------------------------------

    def verify(
        self,
        system: "SwallowSystem",
        campaign: "FaultCampaign | None" = None,
        nos: "NanoOS | None" = None,
        watchdog: "Watchdog | None" = None,
        governor: object | None = None,
    ) -> None:
        """Check a replayed run against this snapshot, field by field.

        Raises :class:`repro.sim.state.StateMismatchError` (or
        ``SimulationError`` for the kernel) naming the first diverging
        path.  Passing verification means the replay reproduced every
        captured observable — the definition of a byte-identical resume.
        """
        state = self.state
        system.restore_state(state["system"])
        if campaign is not None and "campaign" in state:
            campaign.restore_state(state["campaign"])
        if nos is not None and "nos" in state:
            nos.restore_state(state["nos"])
        if watchdog is not None and "watchdog" in state:
            watchdog.restore_state(state["watchdog"])
        if governor is not None and "governor" in state:
            governor.restore_state(state["governor"])

    def __repr__(self) -> str:
        return (
            f"<Snapshot events={self.events_processed} "
            f"t={self.time_ps} ps digest={self.digest[:12]}>"
        )
