"""Checkpoint cadence and retention.

:class:`CheckpointPolicy` says *when* to capture (every N kernel events
and/or every M microseconds of simulated time) and how many snapshots
to retain; :class:`CheckpointStore` is the bounded on-disk retained
set.  Neither perturbs the simulation: the run driver
(:class:`repro.checkpoint.ResumableRun`) peeks the event queue between
steps instead of advancing the clock to a boundary, so a checkpointed
run and an uninterrupted run execute the exact same event sequence.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass
from pathlib import Path

from repro.checkpoint.snapshot import CheckpointError, Snapshot

#: A well-formed bundle name: zero-padded event count, so lexicographic
#: order is capture order.  Anything else in the store directory is an
#: orphan (a torn temp file, a hand-renamed bundle) and never part of
#: the retained set.
BUNDLE_NAME = re.compile(r"^checkpoint-(\d{12})\.json$")


@dataclass(frozen=True)
class CheckpointPolicy:
    """When to capture and how many snapshots to keep."""

    #: Capture after every this-many kernel events (``None`` = off).
    every_events: int | None = None
    #: Capture at every this-many-microsecond boundary of simulated
    #: time (``None`` = off).  Boundaries between two event timestamps
    #: capture once, at the state of the earlier event.
    every_us: float | None = None
    #: Retained snapshots; older ones are pruned (rollback can only
    #: reach this far back).
    retain: int = 3

    def __post_init__(self) -> None:
        if self.every_events is None and self.every_us is None:
            raise ValueError(
                "policy needs every_events and/or every_us"
            )
        if self.every_events is not None and self.every_events < 1:
            raise ValueError("every_events must be >= 1")
        if self.every_us is not None and self.every_us <= 0:
            raise ValueError("every_us must be positive")
        if self.retain < 1:
            raise ValueError("retain must be >= 1")


class CheckpointStore:
    """A directory holding the bounded retained set of bundles.

    Bundles are named ``checkpoint-<events>.json`` (:data:`BUNDLE_NAME`)
    so lexicographic order is capture order; :meth:`add` writes
    atomically (temp file + ``os.replace``) and prunes beyond
    ``retain``.  Opening a store also prunes: orphans left by a killed
    writer and any surplus from a previously larger ``retain`` are
    removed, so the directory always honours the current bound —
    exactly what a farm worker resuming a migrated job relies on.
    """

    def __init__(self, directory, retain: int = 3):
        if retain < 1:
            raise ValueError("retain must be >= 1")
        self.directory = Path(directory)
        self.retain = retain
        self.directory.mkdir(parents=True, exist_ok=True)
        self.prune()

    def paths(self) -> list[Path]:
        """Retained bundle paths, oldest first (well-formed names only)."""
        return sorted(
            path for path in self.directory.iterdir()
            if BUNDLE_NAME.match(path.name)
        )

    def orphans(self) -> list[Path]:
        """Files in the store that are not well-formed bundles.

        Torn ``.tmp`` partials from a writer killed mid-replace and
        malformed ``checkpoint-*`` names (which would otherwise sort
        unpredictably against the zero-padded retained set) — never
        anything that does not look checkpoint-related, so a store can
        share a directory with unrelated files without losing them.
        """
        return sorted(
            path for path in self.directory.iterdir()
            if not BUNDLE_NAME.match(path.name)
            and (path.name.startswith("checkpoint-")
                 or path.name.endswith(".tmp"))
        )

    def prune(self) -> list[Path]:
        """Delete orphans and beyond-``retain`` bundles; returns them."""
        doomed = self.orphans() + self.paths()[:-self.retain]
        for path in doomed:
            os.remove(path)
        return doomed

    def add(self, snapshot: Snapshot) -> Path:
        """Atomically persist ``snapshot``; prune beyond ``retain``."""
        path = self.directory / (
            f"checkpoint-{snapshot.events_processed:012d}.json"
        )
        tmp = path.with_name(path.name + ".tmp")
        snapshot.save(tmp)
        os.replace(tmp, path)
        self.prune()
        return path

    def latest(self) -> Snapshot:
        """Load the most recent bundle (validates schema + digest)."""
        paths = self.paths()
        if not paths:
            raise CheckpointError(f"no checkpoint bundles in {self.directory}")
        return Snapshot.load(paths[-1])

    def __len__(self) -> int:
        return len(self.paths())

    def __repr__(self) -> str:
        return f"<CheckpointStore {self.directory} ({len(self)} bundles)>"
