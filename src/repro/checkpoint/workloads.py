"""Rebuildable workloads: named builders shared by CLI, tests and resume.

Restore works by re-running the workload from scratch (see
:mod:`repro.checkpoint.snapshot`), which is only possible when the
workload can be rebuilt from plain data.  This registry maps a workload
*name* plus a JSON-able *params* dict to a fully wired
:class:`RunContext`; a checkpoint bundle records ``{"workload": name,
"params": params}`` as its setup, and resume rebuilds bit-identically
from that record alone.

Builders must be deterministic: the same params always produce the
same event trajectory.  Anything random must flow through a recorded
seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.checkpoint.snapshot import CheckpointError, Snapshot, content_digest


@dataclass
class RunContext:
    """Everything a resumable run needs to drive and snapshot a workload."""

    system: object
    campaign: object | None = None
    nos: object | None = None
    watchdog: object | None = None
    governor: object | None = None
    #: Words actually delivered to the workload's sink, in order.
    received: list = field(default_factory=list)
    #: What ``received`` must equal for a fully successful run.
    expected: list = field(default_factory=list)
    extras: dict = field(default_factory=dict)

    def capture(self, setup: dict | None = None) -> Snapshot:
        """Snapshot every layer of this context."""
        return Snapshot.capture(
            self.system,
            campaign=self.campaign,
            nos=self.nos,
            watchdog=self.watchdog,
            governor=self.governor,
            setup=setup,
        )

    def verify(self, snapshot: Snapshot) -> None:
        """Check this (replayed) context against ``snapshot``."""
        snapshot.verify(
            self.system,
            campaign=self.campaign,
            nos=self.nos,
            watchdog=self.watchdog,
            governor=self.governor,
        )

    def final_report(self) -> dict:
        """Canonical end-of-run document for byte-identity comparison.

        Fixed internal order (campaign report, then energy report, then
        metrics snapshot, then whole-state digest) because the energy
        queries close integration windows — any two runs that execute
        the same trajectory and then build this report produce the same
        bytes.
        """
        report: dict = {}
        if self.campaign is not None:
            report["campaign"] = self.campaign.report().to_dict()
        report["energy"] = self.system.energy_report().to_dict()
        report["metrics"] = self.system.metrics_snapshot().as_dict()
        scope = self.system.topology.fabric.netscope
        if scope is not None:
            report["netscope"] = scope.heatmap()
        report["received"] = list(self.received)
        report["delivered_ok"] = (
            self.received == self.expected if self.expected else None
        )
        if self.watchdog is not None:
            report["watchdog"] = self.watchdog.snapshot_state()
        if self.governor is not None:
            report["governor"] = self.governor.snapshot_state()
        report["state_digest"] = content_digest(self.system.snapshot_state())
        return report


#: name -> builder(params) -> RunContext
WORKLOADS: dict[str, Callable[[dict], RunContext]] = {}


def register_workload(name: str):
    """Decorator: register a workload builder under ``name``."""

    def register(builder: Callable[[dict], RunContext]):
        if name in WORKLOADS:
            raise ValueError(f"workload {name!r} already registered")
        WORKLOADS[name] = builder
        return builder

    return register


def build_workload(name: str, params: dict | None = None) -> RunContext:
    """Build a registered workload from plain data."""
    builder = WORKLOADS.get(name)
    if builder is None:
        known = ", ".join(sorted(WORKLOADS)) or "(none)"
        raise CheckpointError(f"unknown workload {name!r}; known: {known}")
    return builder(dict(params or {}))


# ---------------------------------------------------------------------------
# Built-in workloads
# ---------------------------------------------------------------------------


def _system_kwargs(params: dict) -> dict:
    """`SwallowSystem` construction kwargs shared by every builder.

    ``freq_mhz``, ``topology`` and ``link_aggregation`` make the DSE
    axes first-class sweepable parameters (the farm's matrices sweep
    topology x frequency x seeds); all are part of the params dict,
    hence of the job's content digest.  ``topology`` names a variant
    from :data:`repro.network.topology.TOPOLOGIES` and
    ``link_aggregation`` widens every inter-package connection to that
    many parallel links.
    """
    kwargs = {
        "slices_x": int(params.get("slices_x", 1)),
        "slices_y": int(params.get("slices_y", 1)),
    }
    if params.get("freq_mhz") is not None:
        from repro.sim import Frequency

        kwargs["frequency"] = Frequency.mhz(float(params["freq_mhz"]))
    if params.get("topology") is not None:
        kwargs["topology"] = str(params["topology"])
    if params.get("link_aggregation") is not None:
        kwargs["link_aggregation"] = int(params["link_aggregation"])
    return kwargs


def _maybe_netscope(system, params: dict) -> None:
    """Attach the fabric observatory when ``params["netscope"]`` asks.

    Part of the params dict, so a resumed run rebuilds the same probes
    (and the same heat-map bytes) from the checkpoint's setup record.
    ``netscope_window_us`` sets the sampling window (default 1 µs).
    """
    if params.get("netscope"):
        window_us = float(params.get("netscope_window_us", 1.0))
        system.netscope(window_ps=int(window_us * 1e6))


def _stream_route(system):
    """The canonical one-hop stream route used by the fault workloads."""
    from repro.network.routing import Layer

    topology = system.topology
    node_a = topology.node_at(0, 0, Layer.VERTICAL)
    node_b = topology.node_at(0, 1, Layer.VERTICAL)
    cores = {core.node_id: core for core in system.cores}
    return node_a, node_b, cores


@register_workload("demo")
def _demo(params: dict) -> RunContext:
    """The quickstart workload (producer/consumer + a spin loop)."""
    from repro.__main__ import _demo_workload
    from repro.core.platform import SwallowSystem

    system = SwallowSystem(**_system_kwargs(params))
    _maybe_netscope(system, params)
    received = _demo_workload(system, seed=params.get("seed"))
    return RunContext(system=system, received=received)


@register_workload("faults_stream")
def _faults_stream(params: dict) -> RunContext:
    """A reliable word stream under a seeded fault campaign.

    The exact workload of ``python -m repro faults``: a producer
    streams ``words`` values over a :class:`ReliableChannel` crossing
    one vertical link, while the campaign injects the given ``faults``
    (default: one flaky link on the stream's route from t=0).
    """
    from repro.apps.reliable import ReliableChannel
    from repro.core.platform import SwallowSystem
    from repro.faults.campaign import FaultCampaign

    words = int(params.get("words", 16))
    system = SwallowSystem(**_system_kwargs(params))
    _maybe_netscope(system, params)
    node_a, node_b, cores = _stream_route(system)
    channel = ReliableChannel.between(cores[node_a], cores[node_b])
    received: list[int] = []

    def producer():
        for i in range(words):
            yield from channel.send(i * 7 + 1)

    def consumer():
        for _ in range(words):
            received.append((yield from channel.recv()))
        yield from channel.drain()

    system.spawn_task(cores[node_a], producer(), name="faults.tx")
    system.spawn_task(cores[node_b], consumer(), name="faults.rx")

    faults = params.get("faults")
    if faults is None:
        faults = [{
            "kind": "flaky_link",
            "at_us": 0.0,
            "node_a": node_a,
            "node_b": node_b,
            "drop_rate": float(params.get("drop_rate", 0.05)),
        }]
    campaign = FaultCampaign.from_spec(system, {
        "seed": int(params.get("seed", 0)),
        "faults": faults,
        "heal": bool(params.get("heal", True)),
    })
    campaign.masked.update(int(i) for i in params.get("masked", ()))
    campaign.register_channel("stream", channel)
    campaign.register_metrics(system.metrics)
    campaign.arm()
    return RunContext(
        system=system,
        campaign=campaign,
        received=received,
        expected=[i * 7 + 1 for i in range(words)],
    )


@register_workload("watchdog_stream")
def _watchdog_stream(params: dict) -> RunContext:
    """The fault stream under NanoOS placement and watchdog supervision.

    Producer and consumer are NanoOS tasks pinned to the stream's
    endpoint cores; the watchdog supervises end-to-end delivery
    (``channel.stats.delivered`` as the progress probe).  With a
    permanent 100 %-drop flaky link injected mid-run, delivery
    livelocks: the sender retries forever, the watchdog fires, the
    replace rung cannot help (the fault is on the wire, not the core),
    and the rollback rung recovers the run — the recovery-ladder
    demonstration workload.
    """
    from repro.apps.reliable import ReliableChannel
    from repro.core.nos import NanoOS
    from repro.core.platform import SwallowSystem
    from repro.core.watchdog import Watchdog
    from repro.faults.campaign import FaultCampaign

    words = int(params.get("words", 24))
    system = SwallowSystem(**_system_kwargs(params))
    _maybe_netscope(system, params)
    node_a, node_b, cores = _stream_route(system)
    channel = ReliableChannel.between(
        cores[node_a], cores[node_b],
        max_retries=int(params.get("max_retries", 1_000_000)),
    )
    received: list[int] = []

    def producer_factory(core):
        def body():
            for i in range(words):
                yield from channel.send(i * 7 + 1)
        return body()

    def consumer_factory(core):
        def body():
            for _ in range(words):
                received.append((yield from channel.recv()))
            yield from channel.drain()
        return body()

    nos = NanoOS(system)
    nos.submit(producer_factory, pin=cores[node_a], name="wd.tx")
    consumer = nos.submit(consumer_factory, pin=cores[node_b], name="wd.rx")

    faults = params.get("faults")
    if faults is None:
        faults = [{
            "kind": "flaky_link",
            "at_us": float(params.get("fault_at_us", 20.0)),
            "node_a": node_a,
            "node_b": node_b,
            "drop_rate": 1.0,
        }]
    campaign = FaultCampaign.from_spec(system, {
        "seed": int(params.get("seed", 0)),
        "faults": faults,
        "heal": bool(params.get("heal", True)),
    }, nos=nos)
    campaign.masked.update(int(i) for i in params.get("masked", ()))
    campaign.register_channel("stream", channel)
    campaign.register_metrics(system.metrics)
    campaign.arm()

    watchdog = Watchdog(
        system, nos=nos,
        check_every_us=float(params.get("check_every_us", 15.0)),
    )
    watchdog.watch(
        consumer,
        progress=lambda: channel.stats.delivered,
        stall_checks=int(params.get("stall_checks", 2)),
        deadline_us=params.get("deadline_us"),
        # Full delivery ends supervision: the consumer then sits in
        # drain(), which is quiescence, not a stall.
        until=lambda: channel.stats.delivered >= words,
    )
    watchdog.register_metrics(system.metrics)
    watchdog.arm()
    return RunContext(
        system=system,
        campaign=campaign,
        nos=nos,
        watchdog=watchdog,
        received=received,
        expected=[i * 7 + 1 for i in range(words)],
    )


@register_workload("policy_rt")
def _policy_rt(params: dict) -> RunContext:
    """A seeded real-time task set under a policy-zoo bundle and core kills.

    The ablation harness's cell: ``tasks`` compute-bound tasks with
    seeded WCETs, deadlines and criticalities are placed by the zoo
    bundle named by ``policy`` (``k`` parameterises the ``kfault``
    bundle; every other bundle gets ``fault_budget = k``), while a
    campaign seeded by ``seed`` kills ``kills`` cores at staggered
    times.  Everything random flows through the two recorded seeds, so
    the run — placements, restarts, sheds, deadline verdicts, energy —
    is a pure function of its params.

    ``governor_budget_mw`` additionally installs a checkpoint-aware
    :class:`~repro.core.governor.PowerGovernor` on core 0's rail.
    """
    import random

    from repro.core.governor import PowerGovernor
    from repro.core.nos import NanoOS
    from repro.core.platform import SwallowSystem
    from repro.faults.campaign import FaultCampaign
    from repro.nos.policies import build_policy
    from repro.xs1.behavioral import Compute

    system = SwallowSystem(**_system_kwargs(params))
    _maybe_netscope(system, params)

    policy_name = str(params.get("policy", "least_loaded"))
    k = int(params.get("k", 1))
    scheduler, dvfs = build_policy(policy_name, k=k)
    if policy_name == "kfault":
        # The k-fault policy owns its tolerance: ≤ k deaths heal via
        # reserved backups, beyond that it sheds instead of raising.
        fault_budget = None
    else:
        budget = params.get("fault_budget", k)
        fault_budget = None if budget is None else int(budget)
    nos = NanoOS(
        system,
        fault_budget=fault_budget,
        spans=bool(params.get("spans", False)),
        policy=scheduler,
        dvfs=dvfs,
    )

    count = int(params.get("tasks", 24))
    taskset = random.Random(int(params.get("taskset_seed", 1234)))
    for index in range(count):
        wcet_instr = taskset.randrange(2_000, 6_001)
        # Tight enough that a frequency-scaled run can miss, loose
        # enough that a full-speed restart after a ≤ k kill cannot
        # (worst case: restart at 34 us + 48 us WCET < 90 us floor).
        deadline_us = round(taskset.uniform(90.0, 220.0), 1)
        criticality = taskset.randrange(0, 3)

        def factory(core, instructions=wcet_instr):
            def body():
                yield Compute(instructions)
            return body()

        nos.submit(
            factory,
            name=f"rt.{index}",
            deadline_us=deadline_us,
            # One issue slot per 4 clock cycles at ≤ 4 threads/core.
            wcet_cycles=4 * wcet_instr,
            criticality=criticality,
        )

    kills = int(params.get("kills", 0))
    seed = int(params.get("seed", 0))
    rng = random.Random(seed)
    kill_from_us = float(params.get("kill_from_us", 10.0))
    kill_every_us = float(params.get("kill_every_us", 12.0))
    victims = rng.sample(
        [core.node_id for core in system.cores], kills
    ) if kills else []
    faults = [
        {
            "kind": "core_kill",
            "at_us": kill_from_us + index * kill_every_us,
            "node_id": node_id,
        }
        for index, node_id in enumerate(victims)
    ]
    campaign = FaultCampaign.from_spec(system, {
        "seed": seed,
        "faults": faults,
        "heal": bool(params.get("heal", True)),
    }, nos=nos)
    campaign.masked.update(int(i) for i in params.get("masked", ()))
    campaign.register_metrics(system.metrics)
    nos.register_metrics(system.metrics)
    campaign.arm()

    governor = None
    if params.get("governor_budget_mw") is not None:
        governor = PowerGovernor(
            system.measurement_board(0, 0),
            channel=int(params.get("governor_channel", 0)),
            budget_mw=float(params["governor_budget_mw"]),
        )
        governor.install(
            system.cores[0],
            iterations=int(params.get("governor_samples", 8)),
        )
    return RunContext(
        system=system,
        campaign=campaign,
        nos=nos,
        governor=governor,
    )
