"""Checkpoint/restore: deterministic snapshots, resume, and rollback.

See :mod:`repro.checkpoint.snapshot` for the capture/verify model,
:mod:`repro.checkpoint.policy` for cadence and retention,
:mod:`repro.checkpoint.workloads` for rebuildable workloads, and
:mod:`repro.checkpoint.resume` for the run driver and recovery ladder.
"""

from repro.checkpoint.policy import CheckpointPolicy, CheckpointStore
from repro.checkpoint.resume import RecoveryReport, ResumableRun
from repro.checkpoint.snapshot import (
    SCHEMA_VERSION,
    BundleIntegrityError,
    CheckpointError,
    Snapshot,
    canonical_json,
    content_digest,
)
from repro.checkpoint.workloads import (
    WORKLOADS,
    RunContext,
    build_workload,
    register_workload,
)

__all__ = [
    "SCHEMA_VERSION",
    "BundleIntegrityError",
    "CheckpointError",
    "CheckpointPolicy",
    "CheckpointStore",
    "RecoveryReport",
    "ResumableRun",
    "RunContext",
    "Snapshot",
    "WORKLOADS",
    "build_workload",
    "canonical_json",
    "content_digest",
    "register_workload",
]
