"""Per-node switch with wormhole routing.

Every XS1-L core has one switch (paper §IV-D).  A switch owns:

* one :class:`InputPort` per incoming half-link (buffered, credit-backed);
* one :class:`ChanendPort` per local channel end that transmits (tokens are
  pulled straight from the chanend's transmit buffer, with the paper's
  three-cycle core-to-network injection latency);
* a :class:`~repro.network.link.DirectionGroup` per outgoing direction.

A route opens when a port sees a three-token header: the destination is
decoded, the next hop chosen by the routing policy, and an output link
seized (or queued for).  The header is forwarded hop by hop and consumed
at the destination switch, which delivers payload tokens into the target
chanend's receive buffer.  The END control token closes the route at each
hop as it passes; without it the route stays open — a circuit (§V.B).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable

from repro.network.header import ChanendAddress
from repro.network.link import DirectionGroup, HalfLink
from repro.network.params import (
    INJECTION_LATENCY_CYCLES,
    LOCAL_DELIVERY_CYCLES_PER_TOKEN,
    SWITCH_BUFFER_TOKENS,
)
from repro.network.routing import Direction, NodeCoord, RoutingError
from repro.network.token import HEADER_TOKENS, Token
from repro.sim import Frequency, Simulator

if TYPE_CHECKING:
    from repro.network.fabric import SwallowFabric
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.netscope import PortProbe
    from repro.xs1.chanend import Chanend


class RouteState:
    """An open route through one port."""

    __slots__ = ("dest", "direction", "link", "local_target", "header_to_send",
                 "opened_ps")

    def __init__(
        self,
        dest: ChanendAddress,
        direction: Direction,
        link: HalfLink | None,
        local_target: "Chanend | None",
        header_to_send: list[Token],
        opened_ps: int = 0,
    ):
        self.dest = dest
        self.direction = direction
        self.link = link
        self.local_target = local_target
        self.header_to_send = header_to_send
        self.opened_ps = opened_ps


class InputPort:
    """A buffered token source feeding the switch's routing engine."""

    def __init__(self, switch: "Switch", name: str, upstream: HalfLink | None = None):
        self.switch = switch
        self.name = name
        self.upstream = upstream
        self.buffer: deque[Token] = deque()
        self.capacity = SWITCH_BUFFER_TOKENS
        self.route: RouteState | None = None
        self._header: list[Token] = []
        self._pump_pending = False
        self.routes_opened = 0
        #: Per-port shares of the switch-level severed/discard counters,
        #: so fault damage is attributable to the port it hit.
        self.routes_severed = 0
        self.tokens_discarded = 0
        #: True while discarding the rest of a severed route's packet
        #: (set when the route's output link died mid-run).
        self._discarding = False
        #: Optional netscope probe (see :mod:`repro.obs.netscope`).
        self.ns: "PortProbe | None" = None

    # -- token intake --------------------------------------------------------

    def accept(self, token: Token) -> None:
        """A token arrived from the upstream link."""
        assert len(self.buffer) < self.capacity, f"{self.name}: buffer overrun"
        self.buffer.append(token)
        if self.ns is not None:
            self.ns.on_depth(self.switch.sim.now, len(self.buffer))
        self.pump()

    # -- token source abstraction (overridden by ChanendPort) ----------------

    def _peek(self) -> Token | None:
        return self.buffer[0] if self.buffer else None

    def _consume(self) -> Token:
        token = self.buffer.popleft()
        if self.upstream is not None:
            self.upstream.return_credit()
        return token

    def _open_route_header(self) -> list[Token] | None:
        """Collect the 3-token header from the stream; None until complete."""
        while len(self._header) < HEADER_TOKENS:
            token = self._peek()
            if token is None:
                return None
            if token.is_control:
                raise RoutingError(f"{self.name}: control token {token} in header")
            self._header.append(self._consume())
        header, self._header = self._header, []
        return header

    # -- routing engine --------------------------------------------------------

    def pump(self) -> None:
        """Schedule the forwarding engine (coalesced within one event)."""
        if self._pump_pending:
            return
        self._pump_pending = True
        self.switch.sim.schedule(0, self._run)

    def granted_link(self, link: HalfLink) -> None:
        """A queued allocation was granted by a closing route."""
        if self.route is not None and self.route.link is None:
            self.route.link = link
        if self.ns is not None:
            self.ns.unblock(self.switch.sim.now)
        self.pump()

    def _run(self) -> None:
        self._pump_pending = False
        if self._discarding:
            self._drain_discard()
            return
        if self.route is None and not self._try_open_route():
            return
        route = self.route
        if route is None:
            return
        if route.local_target is not None:
            self._deliver_local(route)
        elif route.link is not None:
            self._forward(route)
        # else: waiting for link allocation; granted_link() will resume us.

    # -- mid-run failure handling (see repro.faults) --------------------------

    def sever_route(self) -> None:
        """The route's output link died mid-run (upstream side).

        The rest of the current packet — everything up to and including
        its closing END token — still arrives from upstream and is
        discarded; the END then closes the route normally (the dead link
        is released but never re-granted).  The next packet opens a
        fresh route against the healed routing tables.
        """
        route = self.route
        if route is None or self._discarding:
            return
        route.header_to_send.clear()   # never launched; nothing to flush
        self._discarding = True
        self.switch.routes_severed += 1
        self.routes_severed += 1
        if self.ns is not None:
            self.ns.block("severed", self.switch.sim.now)
        tracer = self.switch.fabric.tracer
        if tracer is not None:
            tracer.record(self.switch.sim.now, self.switch.name,
                          "route_severed", self.name, str(route.dest))
        self.pump()

    def _drain_discard(self) -> None:
        while True:
            token = self._peek()
            if token is None:
                return                  # more of the packet arrives later
            self._consume()
            self.switch.tokens_discarded += 1
            self.tokens_discarded += 1
            if token.is_end:
                self._discarding = False
                if self.ns is not None:
                    self.ns.unblock(self.switch.sim.now)
                if self.route is not None:
                    self._close_route(self.route)
                return

    def flush_stale(self) -> None:
        """This port's upstream link died: discard the orphaned route.

        Called on the *downstream* side of a forced link failure and
        recursively along the rest of the severed route's path: buffered
        and in-flight tokens are dropped immediately (no END will ever
        arrive from across the dead link), held output links are
        released to their waiters, and queued allocations are withdrawn.
        """
        self._header.clear()
        self._discarding = False
        if self.ns is not None:
            self.ns.unblock(self.switch.sim.now)
        while self._peek() is not None:
            self._consume()
            self.switch.tokens_discarded += 1
            self.tokens_discarded += 1
        route, self.route = self.route, None
        if route is None:
            return
        self.switch.routes_severed += 1
        self.routes_severed += 1
        tracer = self.switch.fabric.tracer
        if tracer is not None:
            tracer.record(self.switch.sim.now, self.switch.name,
                          "route_severed", self.name, str(route.dest))
        if route.local_target is not None:
            return
        link = route.link
        if link is None:
            self.switch.groups[route.direction].forget(self)
            return
        link.abort_inflight()
        if link.sink is not None:
            link.sink.flush_stale()    # walk the rest of the route
        self.switch.groups[route.direction].release(link, self)

    def _try_open_route(self) -> bool:
        header = self._open_route_header()
        if header is None:
            return False
        dest = ChanendAddress.from_header(header)
        switch = self.switch
        self.routes_opened += 1
        tracer = switch.fabric.tracer
        if tracer is not None:
            tracer.record(switch.sim.now, switch.name, "route_open",
                          self.name, str(dest))
        now = switch.sim.now
        if dest.node == switch.node_id:
            target = switch.fabric.local_chanend(dest)
            self.route = RouteState(dest, Direction.LOCAL, None, target, [],
                                    opened_ps=now)
            return True
        direction = switch.route_policy(dest.node)
        group = switch.groups.get(direction)
        if group is None or not group.links:
            raise RoutingError(
                f"{switch.name}: no {direction.value} links toward node {dest.node}"
            )
        link = group.try_allocate(self, lane=self._crossing_lane(direction, dest))
        if link is None and self.ns is not None:
            self.ns.block("lane_busy", now)
        self.route = RouteState(dest, direction, link, None, list(header),
                                opened_ps=now)
        return True

    def _crossing_lane(self, direction: Direction, dest: ChanendAddress) -> str:
        """Allocation lane for a new route (see DirectionGroup lanes).

        Internal (layer-crossing) hops are classed as *exit* (the final
        hop of a multi-hop route arriving at the destination package —
        routed over the dedicated escape link), *direct* (a single-hop
        in-package message injected by a local chanend — aggregated over
        the other three links, the paper's channel-switching set), or
        *entry* (a transit crossing mid-route, also kept off the escape
        link).  Compass directions use the whole group.
        """
        if direction is not Direction.INTERNAL:
            return "any"
        switch = self.switch
        dest_coord = switch.fabric.coords.get(dest.node)
        arriving = (
            dest_coord is not None
            and (dest_coord.x, dest_coord.y) == (switch.coord.x, switch.coord.y)
        )
        if not arriving:
            return "entry"
        return "direct" if isinstance(self, ChanendPort) else "exit"

    def _forward(self, route: RouteState) -> None:
        link = route.link
        assert link is not None
        if not link.can_send():
            # A held link that is idle yet unsendable is out of credits:
            # the far buffer is full and backpressure reaches this port.
            # (A busy link is actively serializing — that is progress,
            # not a stall.)
            if self.ns is not None and not link.busy and link.credits == 0:
                self.ns.block("credit_stall", self.switch.sim.now)
            return  # resumed by the link's delivery/credit callbacks
        if self.ns is not None and self.ns.blocked_cause is not None:
            self.ns.unblock(self.switch.sim.now)
        if route.header_to_send:
            link.send(route.header_to_send.pop(0))
            self.switch.tokens_forwarded += 1
            return
        token = self._peek()
        if token is None:
            return  # more payload may arrive later
        self._consume()
        link.send(token)
        self.switch.tokens_forwarded += 1
        if token.is_end:
            self._close_route(route)

    def _deliver_local(self, route: RouteState) -> None:
        target = route.local_target
        assert target is not None
        token = self._peek()
        if token is None:
            return
        if not target.deliver(token):
            if self.ns is not None:
                self.ns.block("dest_busy", self.switch.sim.now)
            self.switch.fabric.block_on_rx(target, self)
            return
        if self.ns is not None and self.ns.blocked_cause is not None:
            self.ns.unblock(self.switch.sim.now)
        self._consume()
        self.switch.tokens_delivered += 1
        tracer = self.switch.fabric.tracer
        if tracer is not None:
            tracer.record(self.switch.sim.now, self.switch.name, "deliver",
                          str(route.dest), str(token))
        if token.is_end:
            self._close_route(route)
        elif not self._pump_pending:
            # Core-interface pacing: one token per core cycle.
            self._pump_pending = True
            delay = self.switch.frequency.cycles_to_ps(LOCAL_DELIVERY_CYCLES_PER_TOKEN)
            self.switch.sim.schedule(delay, self._run)

    def _close_route(self, route: RouteState) -> None:
        switch = self.switch
        if route.link is not None:
            switch.groups[route.direction].release(route.link, self)
        self.route = None
        if self.ns is not None and self.ns.blocked_cause is not None:
            self.ns.unblock(switch.sim.now)
        switch.routes_closed += 1
        if switch.route_hold_hist is not None:
            hold_ps = switch.sim.now - route.opened_ps
            switch.route_hold_hist.observe(hold_ps)
            switch.direction_hold_hist(route.direction).observe(hold_ps)
        tracer = switch.fabric.tracer
        if tracer is not None:
            tracer.record(switch.sim.now, switch.name, "route_close",
                          self.name, str(route.dest))
        self.pump()  # a following message may already be buffered

    def __repr__(self) -> str:
        return f"<InputPort {self.name} buf={len(self.buffer)} route={self.route is not None}>"


class ChanendPort(InputPort):
    """Switch-side port of a transmitting local channel end.

    Pulls tokens straight from the chanend's transmit buffer and
    synthesizes the route-opening header from the chanend's destination
    (hardware does this on the first token of a new message).
    """

    def __init__(self, switch: "Switch", chanend: "Chanend"):
        super().__init__(switch, f"{switch.name}.c{chanend.index}", upstream=None)
        self.chanend = chanend

    def notify_tx(self) -> None:
        """The chanend queued tokens; start pumping after injection latency."""
        if self._pump_pending:
            return
        self._pump_pending = True
        delay = self.switch.frequency.cycles_to_ps(INJECTION_LATENCY_CYCLES)
        self.switch.sim.schedule(delay, self._run)

    def _peek(self) -> Token | None:
        return self.chanend.peek_tx()

    def _consume(self) -> Token:
        return self.chanend.pull_tx()

    def _open_route_header(self) -> list[Token] | None:
        if self.chanend.peek_tx() is None:
            return None
        dest = self.chanend.dest
        if dest is None:
            raise RoutingError(f"{self.name}: transmit without destination (setd)")
        return dest.header_tokens()


class Switch:
    """One node's switch: ports, direction groups, and a routing policy."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        coord: NodeCoord,
        fabric: "SwallowFabric",
        frequency: Frequency,
    ):
        self.sim = sim
        self.node_id = node_id
        self.coord = coord
        self.fabric = fabric
        self.frequency = frequency
        self.name = f"sw{node_id}"
        self.groups: dict[Direction, DirectionGroup] = {}
        self.link_ports: list[InputPort] = []
        self.chanend_ports: dict[int, ChanendPort] = {}
        self.routes_closed = 0
        self.tokens_delivered = 0
        self.tokens_forwarded = 0
        #: Routes cut mid-packet by a forced link failure, and tokens
        #: thrown away while flushing/draining them (repro.faults).
        self.routes_severed = 0
        self.tokens_discarded = 0
        #: Route-hold-time histogram, armed by :meth:`register_metrics`.
        self.route_hold_hist = None
        #: Per-direction route-hold histograms, created on first close in
        #: each direction (see :meth:`direction_hold_hist`).
        self._route_hold_dir: dict[Direction, object] = {}
        self._registry: "MetricsRegistry | None" = None

    def route_policy(self, dest_node: int) -> Direction:
        """Next-hop direction toward ``dest_node`` (set by the fabric)."""
        return self.fabric.next_direction(self.node_id, dest_node)

    def group(self, direction: Direction) -> DirectionGroup:
        """The direction group, created on first use."""
        if direction not in self.groups:
            self.groups[direction] = DirectionGroup(f"{self.name}.{direction.value}")
        return self.groups[direction]

    def add_outgoing(self, direction: Direction, link: HalfLink) -> None:
        """Wire an outgoing half-link in ``direction``."""
        self.group(direction).add(link)

    def add_incoming(self, link: HalfLink) -> InputPort:
        """Create the input port for an incoming half-link."""
        port = InputPort(self, f"{self.name}.in{len(self.link_ports)}", upstream=link)
        link.sink = port
        self.link_ports.append(port)
        if self.fabric.netscope is not None:
            self.fabric.netscope.attach_port(port)
        return port

    def chanend_port(self, chanend: "Chanend") -> ChanendPort:
        """The transmit port for a local chanend, created on first use."""
        port = self.chanend_ports.get(chanend.index)
        if port is None:
            port = ChanendPort(self, chanend)
            self.chanend_ports[chanend.index] = port
            if self.fabric.netscope is not None:
                self.fabric.netscope.attach_port(port)
        return port

    @property
    def routes_open(self) -> int:
        """Routes currently held open through this switch."""
        ports: list[InputPort] = [*self.link_ports, *self.chanend_ports.values()]
        return sum(1 for port in ports if port.route is not None)

    @property
    def routes_opened(self) -> int:
        """Routes ever opened through this switch (all ports)."""
        ports: list[InputPort] = [*self.link_ports, *self.chanend_ports.values()]
        return sum(port.routes_opened for port in ports)

    # -- checkpointing (see repro.checkpoint) -------------------------------

    def snapshot_state(self) -> dict:
        """Canonical switch state: counters plus every active port.

        A port is active when it buffers tokens, holds an open route, or
        is mid-discard of a severed packet; idle ports are omitted (and
        an unexpectedly active port after replay fails verification).
        """
        ports: dict[str, dict] = {}
        for port in [*self.link_ports, *self.chanend_ports.values()]:
            if not (port.buffer or port.route is not None
                    or port._discarding or port._header
                    or port.routes_severed or port.tokens_discarded):
                continue
            ports[port.name] = {
                "buffer": [[t.value, t.is_control] for t in port.buffer],
                "header": [[t.value, t.is_control] for t in port._header],
                "route_open": port.route is not None,
                "route_dest": (str(port.route.dest)
                               if port.route is not None else None),
                "discarding": port._discarding,
                "routes_opened": port.routes_opened,
                "routes_severed": port.routes_severed,
                "tokens_discarded": port.tokens_discarded,
            }
        return {
            "node": self.node_id,
            "routes_closed": self.routes_closed,
            "routes_severed": self.routes_severed,
            "tokens_delivered": self.tokens_delivered,
            "tokens_forwarded": self.tokens_forwarded,
            "tokens_discarded": self.tokens_discarded,
            "routes_open": self.routes_open,
            "active_ports": ports,
        }

    def restore_state(self, state: dict) -> None:
        """Verify a replayed switch against checkpointed state."""
        from repro.sim.state import verify_state

        verify_state(self.snapshot_state(), state, self.name)

    def direction_hold_hist(self, direction: Direction):
        """The per-direction route-hold histogram, created on first close.

        Labelled ``switch.route_hold_ps{direction=...,node=...}`` —
        distinct label set from the per-switch rollup, so both series
        coexist and route churn is attributable per output direction.
        """
        hist = self._route_hold_dir.get(direction)
        if hist is None:
            hist = self._registry.histogram(
                "switch.route_hold_ps", node=str(self.node_id),
                direction=direction.value,
            )
            self._route_hold_dir[direction] = hist
        return hist

    def register_metrics(self, registry: "MetricsRegistry") -> None:
        """Publish this switch's routing/traffic series.

        Lazy series: ``switch.tokens_forwarded{node=...}``,
        ``switch.tokens_delivered``, ``switch.routes_opened``,
        ``switch.routes_closed``, the ``switch.routes_open`` gauge, and
        per-port fault attribution (``switch.port_routes_opened``,
        ``switch.port_routes_severed``, ``switch.port_tokens_discarded``
        with a ``port`` label, non-zero series only).  Also arms the
        eager ``switch.route_hold_ps`` histogram — per switch here, per
        direction lazily via :meth:`direction_hold_hist`.
        """
        labels = {"node": str(self.node_id)}
        registry.counter_fn("switch.tokens_forwarded",
                            lambda: self.tokens_forwarded, **labels)
        registry.counter_fn("switch.tokens_delivered",
                            lambda: self.tokens_delivered, **labels)
        registry.counter_fn("switch.routes_opened",
                            lambda: self.routes_opened, **labels)
        registry.counter_fn("switch.routes_closed",
                            lambda: self.routes_closed, **labels)
        registry.counter_fn("switch.routes_severed",
                            lambda: self.routes_severed, **labels)
        registry.counter_fn("switch.tokens_discarded",
                            lambda: self.tokens_discarded, **labels)
        registry.gauge_fn("switch.routes_open",
                          lambda: self.routes_open, **labels)
        self.route_hold_hist = registry.histogram(
            "switch.route_hold_ps", **labels
        )
        self._registry = registry

        def _collect_ports(emit) -> None:
            ports = [*self.link_ports,
                     *(self.chanend_ports[i]
                       for i in sorted(self.chanend_ports))]
            for port in ports:
                port_labels = {**labels, "port": port.name}
                if port.routes_opened:
                    emit("switch.port_routes_opened", port_labels,
                         port.routes_opened)
                if port.routes_severed:
                    emit("switch.port_routes_severed", port_labels,
                         port.routes_severed)
                if port.tokens_discarded:
                    emit("switch.port_tokens_discarded", port_labels,
                         port.tokens_discarded)

        registry.register_collector(_collect_ports)

    def __repr__(self) -> str:
        return f"<Switch {self.name} at {self.coord}>"
