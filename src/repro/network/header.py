"""Route headers and global channel-end addressing.

A channel end is globally addressed by (node id, channel-end index).  In
register form this follows the XS1 resource-identifier layout::

    bits 31..16   node identifier
    bits 15..8    channel-end index on that node
    bits  7..0    resource type (2 = channel end)

A route is opened by a three-token header carrying the 16-bit destination
node id and the 8-bit channel-end index (paper §V.B).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.network.token import HEADER_TOKENS, Token

#: Resource-type code for channel ends in the id encoding.
CHANEND_TYPE = 0x02


@dataclass(frozen=True, order=True)
class ChanendAddress:
    """Global address of a channel end: (node, index)."""

    node: int
    index: int

    def __post_init__(self) -> None:
        if not 0 <= self.node <= 0xFFFF:
            raise ValueError(f"node id {self.node} outside 16 bits")
        if not 0 <= self.index <= 0xFF:
            raise ValueError(f"chanend index {self.index} outside 8 bits")

    def encode(self) -> int:
        """The 32-bit resource-identifier form (for ``setd``)."""
        return (self.node << 16) | (self.index << 8) | CHANEND_TYPE

    @classmethod
    def decode(cls, resource_id: int) -> "ChanendAddress":
        """Parse a 32-bit resource identifier."""
        if resource_id & 0xFF != CHANEND_TYPE:
            raise ValueError(
                f"resource id {resource_id:#010x} is not a channel end"
            )
        return cls(node=(resource_id >> 16) & 0xFFFF, index=(resource_id >> 8) & 0xFF)

    def header_tokens(self) -> list[Token]:
        """The three route-opening header tokens (node hi, node lo, index)."""
        return [
            Token((self.node >> 8) & 0xFF),
            Token(self.node & 0xFF),
            Token(self.index),
        ]

    @classmethod
    def from_header(cls, tokens: list[Token]) -> "ChanendAddress":
        """Reassemble an address from three header tokens."""
        if len(tokens) != HEADER_TOKENS:
            raise ValueError(f"need {HEADER_TOKENS} header tokens, got {len(tokens)}")
        return cls(node=(tokens[0].value << 8) | tokens[1].value, index=tokens[2].value)

    def __str__(self) -> str:
        return f"n{self.node}:c{self.index}"
