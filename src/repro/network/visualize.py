"""ASCII rendering of Swallow topologies (Fig. 7 in text form).

Each package prints as ``[ vv/hh ]`` — the vertical-layer node id over
the horizontal-layer node id — with ``|`` for vertical-layer links,
``-`` for horizontal-layer links, ``=`` for off-board FFC cables, and
``x`` marking failed links.
"""

from __future__ import annotations

from repro.network.params import LINK_OFFBOARD_FFC
from repro.network.topology import SLICE_PACKAGES_X, SLICE_PACKAGES_Y, SwallowTopology

_CELL = 9


def _link_state(topology: SwallowTopology, node_a: int, node_b: int) -> str:
    """'ok', 'failed', or 'ffc' for the first link pair between two nodes."""
    for record in topology.fabric.link_records:
        if {record.node_a, record.node_b} == {node_a, node_b}:
            if not record.healthy:
                return "failed"
            if record.forward.spec is LINK_OFFBOARD_FFC:
                return "ffc"
            return "ok"
    return "none"


def render_topology(topology: SwallowTopology) -> str:
    """A text drawing of the package grid, links, and slice boundaries."""
    lines: list[str] = []
    for y in range(topology.packages_y):
        row_cells = []
        for x in range(topology.packages_x):
            package = topology.packages[(x, y)]
            cell = f"[{package.vertical_node:>3}/{package.horizontal_node:<3}]"
            row_cells.append(cell)
            east = topology.packages.get((x + 1, y))
            if east is not None:
                state = _link_state(
                    topology, package.horizontal_node, east.horizontal_node
                )
                joint = {"ok": "-", "ffc": "=", "failed": "x", "none": " "}[state]
                row_cells.append(joint * 2)
        lines.append("".join(row_cells))
        if y + 1 < topology.packages_y:
            bars = []
            for x in range(topology.packages_x):
                package = topology.packages[(x, y)]
                south = topology.packages[(x, y + 1)]
                state = _link_state(
                    topology, package.vertical_node, south.vertical_node
                )
                bar = {"ok": "|", "ffc": "‖", "failed": "x", "none": " "}[state]
                bars.append(f"  {bar}".ljust(_CELL + 2))
            lines.append("".join(bars).rstrip())
    legend = (
        "[ v/h ] = package (vertical/horizontal node)   "
        "| - on-board   ‖ = FFC cable   x failed"
    )
    return "\n".join(lines + ["", legend])


def render_summary(topology: SwallowTopology) -> str:
    """One-paragraph structural summary."""
    stats: dict[str, int] = {}
    failed = 0
    for record in topology.fabric.link_records:
        stats[record.forward.spec.name] = stats.get(record.forward.spec.name, 0) + 1
        if not record.healthy:
            failed += 1
    parts = [
        f"{topology.slices_x}x{topology.slices_y} slices, "
        f"{topology.num_nodes} cores, {len(topology.packages)} packages",
        ", ".join(f"{count} {name}" for name, count in sorted(stats.items())),
    ]
    if failed:
        parts.append(f"{failed} failed link pair(s)")
    return "; ".join(parts)
