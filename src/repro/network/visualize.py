"""ASCII rendering of Swallow topologies (Fig. 7 in text form).

Each package prints as ``[ vv/hh ]`` — the vertical-layer node id over
the horizontal-layer node id — with ``|`` for vertical-layer links,
``-`` for horizontal-layer links, ``=`` for off-board FFC cables, and
``x`` marking failed links.

:func:`render_heat` overlays a netscope heat-map document
(:meth:`repro.obs.netscope.NetScope.heatmap`) on the same grid: link
glyphs scale with windowed utilization and each package cell shows its
two nodes' traffic intensity — the spatial "which link was hot" view.
"""

from __future__ import annotations

from repro.network.params import LINK_OFFBOARD_FFC
from repro.network.topology import SLICE_PACKAGES_X, SLICE_PACKAGES_Y, SwallowTopology

_CELL = 9

#: Heat intensity ramp, cold to hot (index = level 0..7).
HEAT_RAMP = " .:-=*#@"


def _link_index(topology: SwallowTopology) -> dict[frozenset[int], object]:
    """``{node pair} -> first LinkRecord`` — built once per render.

    The grid walk asks about O(packages) pairs; scanning
    ``fabric.link_records`` per cell made rendering O(packages x links).
    One pass over the records keeps it linear (first record per pair
    wins, matching the old scan's first-match semantics).
    """
    index: dict[frozenset[int], object] = {}
    for record in topology.fabric.link_records:
        index.setdefault(frozenset((record.node_a, record.node_b)), record)
    return index


def _link_state(index: dict, node_a: int, node_b: int) -> str:
    """'ok', 'failed', or 'ffc' for the first link pair between two nodes."""
    record = index.get(frozenset((node_a, node_b)))
    if record is None:
        return "none"
    if not record.healthy:
        return "failed"
    if record.forward.spec is LINK_OFFBOARD_FFC:
        return "ffc"
    return "ok"


def render_topology(topology: SwallowTopology) -> str:
    """A text drawing of the package grid, links, and slice boundaries."""
    index = _link_index(topology)
    lines: list[str] = []
    for y in range(topology.packages_y):
        row_cells = []
        for x in range(topology.packages_x):
            package = topology.packages[(x, y)]
            cell = f"[{package.vertical_node:>3}/{package.horizontal_node:<3}]"
            row_cells.append(cell)
            east = topology.packages.get((x + 1, y))
            if east is not None:
                state = _link_state(
                    index, package.horizontal_node, east.horizontal_node
                )
                joint = {"ok": "-", "ffc": "=", "failed": "x", "none": " "}[state]
                row_cells.append(joint * 2)
        lines.append("".join(row_cells))
        if y + 1 < topology.packages_y:
            bars = []
            for x in range(topology.packages_x):
                package = topology.packages[(x, y)]
                south = topology.packages[(x, y + 1)]
                state = _link_state(
                    index, package.vertical_node, south.vertical_node
                )
                bar = {"ok": "|", "ffc": "‖", "failed": "x", "none": " "}[state]
                bars.append(f"  {bar}".ljust(_CELL + 2))
            lines.append("".join(bars).rstrip())
    legend = (
        "[ v/h ] = package (vertical/horizontal node)   "
        "| - on-board   ‖ = FFC cable   x failed"
    )
    return "\n".join(lines + ["", legend])


def _heat_level(value: float, peak: float) -> int:
    """Intensity 0..7, linear in ``value / peak`` (0 stays 0)."""
    if peak <= 0 or value <= 0:
        return 0
    return min(len(HEAT_RAMP) - 1,
               1 + int((len(HEAT_RAMP) - 2) * value / peak))


def render_heat(topology: SwallowTopology, heatmap: dict) -> str:
    """Overlay a netscope heat-map document on the topology grid.

    Link glyphs show the pair's hotter direction (fraction of elapsed
    time spent serializing, scaled to the run's hottest link); package
    cells show each node's switch throughput (tokens forwarded +
    delivered, scaled to the hottest node).  ``x`` still marks failed
    links.  Pure function of the document — byte-stable.
    """
    pair_util: dict[frozenset[int], float] = {}
    pair_failed: dict[frozenset[int], bool] = {}
    for row in heatmap["links"]:
        key = frozenset((row["src"], row["dst"]))
        pair_util[key] = max(pair_util.get(key, 0.0), row["utilization"])
        pair_failed[key] = pair_failed.get(key, False) or row["failed"]
    node_tokens = {
        row["node"]: row["tokens_forwarded"] + row["tokens_delivered"]
        for row in heatmap["nodes"]
    }
    peak_util = max(pair_util.values(), default=0.0)
    peak_tokens = max(node_tokens.values(), default=0)

    def node_char(node_id: int) -> str:
        return HEAT_RAMP[_heat_level(node_tokens.get(node_id, 0), peak_tokens)]

    def link_char(node_a: int, node_b: int) -> str:
        key = frozenset((node_a, node_b))
        if key not in pair_util:
            return " "
        if pair_failed[key]:
            return "x"
        return HEAT_RAMP[_heat_level(pair_util[key], peak_util)]

    lines: list[str] = []
    for y in range(topology.packages_y):
        row_cells = []
        for x in range(topology.packages_x):
            package = topology.packages[(x, y)]
            cell = (f"[ {node_char(package.vertical_node)}/"
                    f"{node_char(package.horizontal_node)} ]")
            row_cells.append(cell.ljust(_CELL - 2))
            east = topology.packages.get((x + 1, y))
            if east is not None:
                glyph = link_char(package.horizontal_node,
                                  east.horizontal_node)
                row_cells.append(glyph * 2)
        lines.append("".join(row_cells).rstrip())
        if y + 1 < topology.packages_y:
            bars = []
            for x in range(topology.packages_x):
                package = topology.packages[(x, y)]
                south = topology.packages[(x, y + 1)]
                glyph = link_char(package.vertical_node, south.vertical_node)
                bars.append(f"  {glyph}".ljust(_CELL))
            lines.append("".join(bars).rstrip())
    elapsed_us = heatmap["elapsed_ps"] / 1e6
    legend = [
        "",
        f"heat ramp '{HEAT_RAMP}' cold->hot   x failed link",
        f"links: peak utilization {peak_util:.1%} of {elapsed_us:.3f} us   "
        f"nodes: peak {peak_tokens} tokens through switch",
    ]
    cut = heatmap.get("slice_cut") or {}
    if cut.get("boundaries"):
        rows = ", ".join(
            f"({b['from'][0]},{b['from'][1]})->({b['to'][0]},{b['to'][1]}) "
            f"{b['tokens']} tok"
            + (f" gap>={b['min_gap_ps']} ps" if b["min_gap_ps"] is not None
               else "")
            for b in cut["boundaries"]
        )
        legend.append(f"slice cut: {rows}")
    return "\n".join(lines + legend)


def render_summary(topology: SwallowTopology) -> str:
    """One-paragraph structural summary."""
    stats: dict[str, int] = {}
    failed = 0
    for record in topology.fabric.link_records:
        stats[record.forward.spec.name] = stats.get(record.forward.spec.name, 0) + 1
        if not record.healthy:
            failed += 1
    parts = [
        f"{topology.slices_x}x{topology.slices_y} slices, "
        f"{topology.num_nodes} cores, {len(topology.packages)} packages",
        ", ".join(f"{count} {name}" for name, count in sorted(stats.items())),
    ]
    if failed:
        parts.append(f"{failed} failed link pair(s)")
    return "; ".join(parts)
