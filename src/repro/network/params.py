"""Network parameters: link classes, speeds, energies and timing constants.

Sources in the paper:

* Table I — per-link-class data rate, maximum link power, energy per bit.
* §V.C  — five-wire protocol: 8-bit tokens of 2-bit symbols; token transmit
  time 3·Ts + Tt (+1 symbol slot in our interpretation, giving exactly
  8 cycles for Ts=2, Tt=1 and hence 500 Mbit/s at 500 MHz); internal links
  500 Mbit/s max, external 125 Mbit/s max.
* Fig. 6 — four internal links per package (2 Gbit/s aggregate),
  four external links (N/S/E/W).
* §V.A  — "Data words can be transferred from the core to the network
  hardware with just three cycles of latency (6 ns)".

Table I's data-rate column is the *measured operating point* (half the
§V.C maxima — links are clocked down "to preserve signal integrity" on
longer traces); both figures are kept here and which one a simulation
uses is a :class:`LinkSpec` choice.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim import PS_PER_S
from repro.network.token import TOKEN_BITS

#: Cycles from a core register to its switch (paper: 3 cycles = 6 ns).
INJECTION_LATENCY_CYCLES = 3

#: Tokens moved per core cycle between switch and a local chanend.
LOCAL_DELIVERY_CYCLES_PER_TOKEN = 1

#: Input-buffer depth (tokens) of each switch port; also the credit window.
SWITCH_BUFFER_TOKENS = 8

#: Wire transitions needed per byte by the link protocol (paper §II:
#: "requires only four wire transitions per byte of data").
TRANSITIONS_PER_BYTE = 4


def symbol_timing_cycles(ts: int, tt: int) -> int:
    """Token transmit time in link-clock cycles for inter-symbol delay
    ``ts`` and inter-token delay ``tt``.

    The paper quotes 3·Ts + Tt and says Ts=2, Tt=1 yields 500 Mbit/s at
    500 MHz; that requires 8 cycles per 8-bit token, so we count the
    first symbol's slot explicitly: 3·Ts + Tt + 1.
    """
    if ts < 1 or tt < 0:
        raise ValueError(f"invalid symbol timing Ts={ts}, Tt={tt}")
    return 3 * ts + tt + 1


@dataclass(frozen=True)
class LinkSpec:
    """Static properties of one link class."""

    name: str
    #: Maximum raw bit rate (§V.C / Fig. 6).
    max_bitrate: int
    #: Operating bit rate at which Table I was measured.
    operating_bitrate: int
    #: Maximum link power at the operating point, in mW (Table I).
    max_power_mw: float

    @property
    def energy_per_bit_pj(self) -> float:
        """Energy per bit at the operating point (Table I derivation)."""
        # mW / (bit/s) = mJ/bit; * 1e9 -> pJ/bit
        return self.max_power_mw / self.operating_bitrate * 1e9

    def token_time_ps(self, use_operating_rate: bool = False) -> int:
        """Serialization time of one 8-bit token, in picoseconds."""
        rate = self.operating_bitrate if use_operating_rate else self.max_bitrate
        return round(TOKEN_BITS * PS_PER_S / rate)


#: In-package links between the two cores of an XS1-L2A (four of them).
LINK_ON_CHIP = LinkSpec(
    name="on-chip",
    max_bitrate=500_000_000,
    operating_bitrate=250_000_000,
    max_power_mw=1.4,
)

#: Package-to-package links running vertically on a slice PCB.
LINK_BOARD_VERTICAL = LinkSpec(
    name="on-board-vertical",
    max_bitrate=125_000_000,
    operating_bitrate=62_500_000,
    max_power_mw=13.3,
)

#: Package-to-package links running horizontally on a slice PCB.
LINK_BOARD_HORIZONTAL = LinkSpec(
    name="on-board-horizontal",
    max_bitrate=125_000_000,
    operating_bitrate=62_500_000,
    max_power_mw=12.6,
)

#: Slice-to-slice links over 30 cm flexible flat cable.
LINK_OFFBOARD_FFC = LinkSpec(
    name="off-board-ffc",
    max_bitrate=125_000_000,
    operating_bitrate=62_500_000,
    max_power_mw=680.0,
)

#: All link classes of Table I, in table order.
TABLE_I_LINKS = (
    LINK_ON_CHIP,
    LINK_BOARD_VERTICAL,
    LINK_BOARD_HORIZONTAL,
    LINK_OFFBOARD_FFC,
)

#: Number of parallel links between the two cores of a package (Fig. 6).
INTERNAL_LINKS_PER_PACKAGE = 4

#: External links per package: one per compass direction (Fig. 6).
EXTERNAL_LINKS_PER_PACKAGE = 4
