"""Topology builders: packages, slices, and multi-slice grids.

Physical structure (paper §IV-B, §V-A, Figs. 5–7):

* an XS1-L2A **package** holds two nodes joined by four on-chip links;
  one node's external links run north/south (VERTICAL layer), the
  other's east/west (HORIZONTAL layer);
* a **slice** is sixteen cores = eight packages on one PCB.  We arrange
  them four packages wide by two tall.  Package-to-package links on the
  PCB use the on-board link classes of Table I.  Twelve external link
  ports leave the board (N/S on each column, E/W on each row); the paper
  counts "ten off-board network links" with "up to two Ethernet modules
  per slice (on the South external links)", i.e. two of the twelve are
  reserved for Ethernet bridges — we reproduce that accounting;
* a **grid** of slices connects neighbouring boards with 30 cm FFC
  ribbon cables (the expensive 10 880 pJ/bit class of Table I).

Beyond the paper's as-built machine, the builder constructs the
*hypothetical* variants the DSE engine sweeps (:mod:`repro.dse`):

* ``topology="lattice"`` (default) — the paper's unwoven lattice;
* ``topology="mesh"`` — both layers get both dimensions (each package's
  two nodes sit on a full 2-D mesh, still joined by the four on-chip
  links), the wiring Swallow's pin-out forbids but a re-spun package
  could offer;
* ``topology="torus"`` — the mesh plus wrap-around links joining each
  row's and column's ends, costed as the off-board FFC class (a wrap is
  a long ribbon cable);
* ``link_aggregation=N`` — every inter-package connection is ``N``
  parallel links (the paper's "multiple links can be assigned" knob).

The lattice routes with the paper's coordinate policy; mesh and torus
switch the fabric to software routing tables (shortest path over the
actual wiring — the paper's "new routing algorithms can simply be
programmed in software"), recomputed deterministically, so every
variant stays byte-identical across runs.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.network.fabric import RoutePolicy, SwallowFabric
from repro.network.params import (
    INTERNAL_LINKS_PER_PACKAGE,
    LINK_BOARD_HORIZONTAL,
    LINK_BOARD_VERTICAL,
    LINK_OFFBOARD_FFC,
    LINK_ON_CHIP,
)
from repro.network.routing import Direction, Layer, NodeCoord, next_direction
from repro.sim import Frequency, Simulator

#: Packages across one slice (east-west).
SLICE_PACKAGES_X = 4
#: Packages down one slice (north-south).
SLICE_PACKAGES_Y = 2
#: Cores (= nodes) per slice.
CORES_PER_SLICE = 2 * SLICE_PACKAGES_X * SLICE_PACKAGES_Y
#: External link ports on a slice's board edge.
SLICE_EDGE_PORTS = 2 * SLICE_PACKAGES_X + 2 * SLICE_PACKAGES_Y
#: South-edge ports reserved for Ethernet bridges (paper §V.E).
SLICE_ETHERNET_PORTS = 2
#: Off-board network links per slice as counted by the paper.
SLICE_OFFBOARD_LINKS = SLICE_EDGE_PORTS - SLICE_ETHERNET_PORTS
#: Topology variants the builder can wire (the DSE topology axis).
TOPOLOGIES = ("lattice", "mesh", "torus")


@dataclass(frozen=True)
class PackageRef:
    """One XS1-L2A package at lattice position (x, y)."""

    x: int
    y: int
    vertical_node: int
    horizontal_node: int


class SwallowTopology:
    """A grid of Swallow slices wired as an unwoven lattice (or variant)."""

    def __init__(
        self,
        sim: Simulator,
        slices_x: int = 1,
        slices_y: int = 1,
        policy: RoutePolicy = next_direction,
        frequency: Frequency | None = None,
        use_operating_rate: bool = False,
        topology: str = "lattice",
        link_aggregation: int = 1,
    ):
        if slices_x < 1 or slices_y < 1:
            raise ValueError("need at least one slice in each dimension")
        if topology not in TOPOLOGIES:
            raise ValueError(
                f"unknown topology {topology!r}; known: {', '.join(TOPOLOGIES)}"
            )
        if link_aggregation < 1:
            raise ValueError("link_aggregation must be >= 1")
        self.sim = sim
        self.slices_x = slices_x
        self.slices_y = slices_y
        self.topology_name = topology
        self.link_aggregation = link_aggregation
        self.packages_x = SLICE_PACKAGES_X * slices_x
        self.packages_y = SLICE_PACKAGES_Y * slices_y
        self.fabric = SwallowFabric(
            sim, policy=policy, frequency=frequency,
            use_operating_rate=use_operating_rate,
        )
        self.packages: dict[tuple[int, int], PackageRef] = {}
        self._node_by_coord: dict[NodeCoord, int] = {}
        self._build_nodes()
        #: The wiring plan: (node_a, dir_ab, node_b, dir_ba, spec, count)
        #: tuples in deterministic construction order — the single source
        #: both the live fabric and :meth:`graph` are built from.
        self._edges = self._plan_links()
        self._build_links()
        if topology != "lattice":
            # The coordinate policy encodes the lattice's layer split;
            # mesh/torus routes exploit their extra links via software
            # routing tables instead (recomputed on link failures).
            self.fabric.use_table_routing()

    # -- construction ---------------------------------------------------------

    def _build_nodes(self) -> None:
        next_id = 0
        for y in range(self.packages_y):
            for x in range(self.packages_x):
                v_node, h_node = next_id, next_id + 1
                next_id += 2
                v_coord = NodeCoord(x, y, Layer.VERTICAL)
                h_coord = NodeCoord(x, y, Layer.HORIZONTAL)
                self.fabric.add_node(v_node, v_coord)
                self.fabric.add_node(h_node, h_coord)
                self._node_by_coord[v_coord] = v_node
                self._node_by_coord[h_coord] = h_node
                self.packages[(x, y)] = PackageRef(x, y, v_node, h_node)

    def _plan_links(self) -> list[tuple]:
        """The wiring plan for the configured topology variant.

        The lattice plan preserves the historical construction order
        exactly (link order is part of snapshot byte-identity); mesh
        adds the cross-layer dimension per neighbour pair, torus appends
        its wrap links after the grid links.
        """
        edges: list[tuple] = []
        meshed = self.topology_name in ("mesh", "torus")
        agg = self.link_aggregation
        for (x, y), package in self.packages.items():
            # Four on-chip links joining the two layers of the package.
            edges.append((
                package.vertical_node, Direction.INTERNAL,
                package.horizontal_node, Direction.INTERNAL,
                LINK_ON_CHIP, INTERNAL_LINKS_PER_PACKAGE,
            ))
            # Southward neighbour: vertical-layer chain.
            south = self.packages.get((x, y + 1))
            if south is not None:
                spec = (
                    LINK_BOARD_VERTICAL
                    if (y + 1) % SLICE_PACKAGES_Y != 0
                    else LINK_OFFBOARD_FFC
                )
                edges.append((
                    package.vertical_node, Direction.SOUTH,
                    south.vertical_node, Direction.NORTH, spec, agg,
                ))
                if meshed:
                    edges.append((
                        package.horizontal_node, Direction.SOUTH,
                        south.horizontal_node, Direction.NORTH, spec, agg,
                    ))
            # Eastward neighbour: horizontal-layer chain.
            east = self.packages.get((x + 1, y))
            if east is not None:
                spec = (
                    LINK_BOARD_HORIZONTAL
                    if (x + 1) % SLICE_PACKAGES_X != 0
                    else LINK_OFFBOARD_FFC
                )
                edges.append((
                    package.horizontal_node, Direction.EAST,
                    east.horizontal_node, Direction.WEST, spec, agg,
                ))
                if meshed:
                    edges.append((
                        package.vertical_node, Direction.EAST,
                        east.vertical_node, Direction.WEST, spec, agg,
                    ))
        if self.topology_name == "torus":
            # Wrap each column (both layers), then each row — a wrap is
            # a long ribbon cable, so it costs the off-board FFC class.
            if self.packages_y > 1:
                for x in range(self.packages_x):
                    top = self.packages[(x, 0)]
                    bottom = self.packages[(x, self.packages_y - 1)]
                    edges.append((
                        bottom.vertical_node, Direction.SOUTH,
                        top.vertical_node, Direction.NORTH,
                        LINK_OFFBOARD_FFC, agg,
                    ))
                    edges.append((
                        bottom.horizontal_node, Direction.SOUTH,
                        top.horizontal_node, Direction.NORTH,
                        LINK_OFFBOARD_FFC, agg,
                    ))
            if self.packages_x > 1:
                for y in range(self.packages_y):
                    west = self.packages[(0, y)]
                    east = self.packages[(self.packages_x - 1, y)]
                    edges.append((
                        east.horizontal_node, Direction.EAST,
                        west.horizontal_node, Direction.WEST,
                        LINK_OFFBOARD_FFC, agg,
                    ))
                    edges.append((
                        east.vertical_node, Direction.EAST,
                        west.vertical_node, Direction.WEST,
                        LINK_OFFBOARD_FFC, agg,
                    ))
        return edges

    def _build_links(self) -> None:
        for node_a, dir_ab, node_b, dir_ba, spec, count in self._edges:
            self.fabric.connect(
                node_a, dir_ab, node_b, dir_ba, spec, count=count,
            )

    # -- lookup -----------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Total cores (= nodes) in the system."""
        return 2 * len(self.packages)

    @property
    def num_slices(self) -> int:
        """Total slices in the grid."""
        return self.slices_x * self.slices_y

    def node_at(self, x: int, y: int, layer: Layer) -> int:
        """Node id at lattice position (x, y, layer)."""
        return self._node_by_coord[NodeCoord(x, y, layer)]

    def coord_of(self, node_id: int) -> NodeCoord:
        """Lattice position of ``node_id``."""
        return self.fabric.coords[node_id]

    def node_ids(self) -> list[int]:
        """All *core* node ids, ascending (attached bridges excluded)."""
        return sorted(self._node_by_coord.values())

    def slice_of(self, node_id: int) -> tuple[int, int]:
        """Which slice (sx, sy) a node belongs to."""
        coord = self.coord_of(node_id)
        return coord.x // SLICE_PACKAGES_X, coord.y // SLICE_PACKAGES_Y

    def nodes_in_slice(self, sx: int, sy: int) -> list[int]:
        """Node ids of one slice."""
        return [n for n in self.node_ids() if self.slice_of(n) == (sx, sy)]

    # -- analysis -----------------------------------------------------------------

    def graph(self) -> nx.MultiGraph:
        """The link graph (nodes = cores, parallel edges kept) with
        per-edge ``spec`` (link class) and ``bitrate`` attributes.

        Derived from the same wiring plan the live fabric was built
        from, so analysis (bisection, structure summaries) and the
        simulated network can never disagree about what is wired.
        """
        graph = nx.MultiGraph()
        for node_id, coord in self.fabric.coords.items():
            graph.add_node(node_id, coord=coord)
        for node_a, _, node_b, _, spec, count in self._edges:
            graph.add_edges_from(
                [(node_a, node_b)] * count,
                spec=spec, bitrate=spec.max_bitrate,
            )
        return graph

    def __repr__(self) -> str:
        return (
            f"<SwallowTopology {self.topology_name} "
            f"{self.slices_x}x{self.slices_y} slices, "
            f"{self.num_nodes} cores>"
        )
