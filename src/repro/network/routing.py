"""Dimension-order 2.5-D routing on the unwoven lattice.

Swallow's package pin-out forbids a plain 2-D mesh, so the network is an
*unwoven lattice* of two layers: the VERTICAL layer's nodes carry the
north/south links, the HORIZONTAL layer's nodes carry east/west, and the
four in-package links connect a vertical-layer node to its horizontal-
layer sibling (paper §V.A, Fig. 7).

Routing is dimension-ordered with the vertical dimension prioritised
(paper: "The dimension order routing strategy that we use prioritizes the
vertical dimension first").  A message at a horizontal-layer node that
needs to move vertically first crosses to the sibling node, so any route
makes at most two layer transitions.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class Layer(Enum):
    """Which lattice layer a node's external links serve."""

    VERTICAL = "V"
    HORIZONTAL = "H"


class Direction(Enum):
    """Output directions available at a switch."""

    NORTH = "N"
    SOUTH = "S"
    EAST = "E"
    WEST = "W"
    INTERNAL = "I"   # cross to the package sibling (layer change)
    LOCAL = "local"  # deliver to a chanend on this node


class RoutingError(Exception):
    """Raised when no route exists toward a destination."""


@dataclass(frozen=True, order=True)
class NodeCoord:
    """Global position of a node: lattice column/row plus layer.

    ``x`` grows eastward, ``y`` grows southward.  The two nodes of a
    package share (x, y) and differ in layer.
    """

    x: int
    y: int
    layer: Layer

    def __str__(self) -> str:
        return f"({self.x},{self.y},{self.layer.value})"


def _travel_vertical(current: NodeCoord, dest: NodeCoord) -> Direction:
    if current.layer is not Layer.VERTICAL:
        return Direction.INTERNAL
    return Direction.NORTH if dest.y < current.y else Direction.SOUTH


def _travel_horizontal(current: NodeCoord, dest: NodeCoord) -> Direction:
    if current.layer is not Layer.HORIZONTAL:
        return Direction.INTERNAL
    return Direction.EAST if dest.x > current.x else Direction.WEST


def next_direction(current: NodeCoord, dest: NodeCoord) -> Direction:
    """The paper's dimension-order next hop from ``current``.

    The dimension whose layer *matches the destination node* is travelled
    last, so the route arrives without a final layer correction and makes
    at most two layer transitions (paper §V.A).  For a horizontal-layer
    destination this is exactly "vertical dimension first"; the paper's
    exemplary worst case — two horizontal-layer nodes with different
    vertical index — costs its two transitions here (H -> V, travel
    vertically, V -> H, travel horizontally).
    """
    dx = dest.x - current.x
    dy = dest.y - current.y
    if dx == 0 and dy == 0:
        return Direction.INTERNAL if current.layer is not dest.layer else Direction.LOCAL
    if dx != 0 and dy != 0:
        # Vertical first, except the one case where that would force a
        # third layer transition: travelling from the horizontal layer to
        # a vertical-layer node.
        vertical_now = not (
            current.layer is Layer.HORIZONTAL and dest.layer is Layer.VERTICAL
        )
    else:
        vertical_now = dy != 0
    if vertical_now:
        return _travel_vertical(current, dest)
    return _travel_horizontal(current, dest)


def strict_vertical_first(current: NodeCoord, dest: NodeCoord) -> Direction:
    """Naive strict vertical-first order (ablation baseline).

    Always exhausts the vertical dimension before the horizontal one,
    costing up to *three* layer transitions when the destination sits on
    the vertical layer and both dimensions are non-zero.
    """
    if current.y != dest.y:
        return _travel_vertical(current, dest)
    if current.x != dest.x:
        return _travel_horizontal(current, dest)
    return Direction.INTERNAL if current.layer is not dest.layer else Direction.LOCAL


def horizontal_first_direction(current: NodeCoord, dest: NodeCoord) -> Direction:
    """Mirror of :func:`next_direction` with the roles of the dimensions
    swapped (for ablation studies)."""
    dx = dest.x - current.x
    dy = dest.y - current.y
    if dx == 0 and dy == 0:
        return Direction.INTERNAL if current.layer is not dest.layer else Direction.LOCAL
    if dx != 0 and dy != 0:
        horizontal_now = not (
            current.layer is Layer.VERTICAL and dest.layer is Layer.HORIZONTAL
        )
    else:
        horizontal_now = dx != 0
    if horizontal_now:
        return _travel_horizontal(current, dest)
    return _travel_vertical(current, dest)


def route_hops(
    source: NodeCoord,
    dest: NodeCoord,
    policy=next_direction,
) -> list[Direction]:
    """The full hop sequence from ``source`` to ``dest`` (excluding LOCAL)."""
    hops: list[Direction] = []
    current = source
    limit = 4 + 2 * (abs(source.x - dest.x) + abs(source.y - dest.y))
    while True:
        direction = policy(current, dest)
        if direction is Direction.LOCAL:
            return hops
        hops.append(direction)
        current = _step(current, direction)
        if len(hops) > limit:
            raise RoutingError(
                f"routing loop from {source} to {dest} via {policy.__name__}"
            )


def _step(coord: NodeCoord, direction: Direction) -> NodeCoord:
    if direction is Direction.NORTH:
        return NodeCoord(coord.x, coord.y - 1, coord.layer)
    if direction is Direction.SOUTH:
        return NodeCoord(coord.x, coord.y + 1, coord.layer)
    if direction is Direction.EAST:
        return NodeCoord(coord.x + 1, coord.y, coord.layer)
    if direction is Direction.WEST:
        return NodeCoord(coord.x - 1, coord.y, coord.layer)
    if direction is Direction.INTERNAL:
        other = Layer.HORIZONTAL if coord.layer is Layer.VERTICAL else Layer.VERTICAL
        return NodeCoord(coord.x, coord.y, other)
    raise RoutingError(f"cannot step {direction} from {coord}")


def layer_transitions(source: NodeCoord, dest: NodeCoord) -> int:
    """Number of layer crossings on the vertical-first route (paper: <= 2)."""
    return sum(1 for hop in route_hops(source, dest) if hop is Direction.INTERNAL)
