"""The Swallow network fabric: switches + links + routing, as one object.

``SwallowFabric`` implements the :class:`repro.xs1.fabric.Fabric` protocol
that cores speak, and owns the graph of switches and half-links.  Topology
builders (:mod:`repro.network.topology`) populate it; cores are then
created against it, one per node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.network.header import ChanendAddress
from repro.network.link import HalfLink
from repro.network.params import LinkSpec
from repro.network.routing import Direction, NodeCoord, RoutingError, next_direction
from repro.network.switch import Switch
from repro.sim import Frequency, Simulator

if TYPE_CHECKING:
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.netscope import NetScope
    from repro.sim.tracing import TraceRecorder
    from repro.xs1.chanend import Chanend

#: A routing policy maps (current coordinate, destination coordinate) to
#: the next direction; the default is the paper's vertical-first order.
RoutePolicy = Callable[[NodeCoord, NodeCoord], Direction]


@dataclass(frozen=True)
class LinkRecord:
    """Bookkeeping for one full-duplex link pair."""

    node_a: int
    node_b: int
    direction_ab: Direction
    direction_ba: Direction
    forward: HalfLink
    backward: HalfLink

    @property
    def healthy(self) -> bool:
        """Both half-links operational."""
        return not (self.forward.failed or self.backward.failed)


class SwallowFabric:
    """Token-level network of per-node switches with wormhole routing."""

    def __init__(
        self,
        sim: Simulator,
        policy: RoutePolicy = next_direction,
        frequency: Frequency | None = None,
        use_operating_rate: bool = False,
    ):
        self.sim = sim
        self.policy = policy
        self.frequency = frequency or Frequency(500_000_000)
        self.use_operating_rate = use_operating_rate
        self.switches: dict[int, Switch] = {}
        self.coords: dict[int, NodeCoord] = {}
        self.links: list[HalfLink] = []
        self._chanends: dict[ChanendAddress, "Chanend"] = {}
        self._rx_blocked: dict[ChanendAddress, list] = {}
        #: Leaf nodes (e.g. Ethernet bridges) hang off one anchor node and
        #: take no transit traffic: node -> (anchor, from-anchor direction,
        #: to-anchor direction).
        self._leaves: dict[int, tuple[int, Direction, Direction]] = {}
        #: One record per full-duplex link pair (failure management).
        self.link_records: list[LinkRecord] = []
        #: Links already wired per ordered node pair — keeps link names
        #: unique when the same pair is connected by several
        #: :meth:`connect` calls (e.g. a torus wrap joining nodes that
        #: are already grid neighbours).
        self._pair_counts: dict[tuple[int, int], int] = {}
        #: Software routing tables (node -> dest -> direction); when set
        #: they take precedence over the coordinate policy.
        self.routing_tables: dict[int, dict[int, Direction]] | None = None
        #: Called with the :class:`LinkRecord` after each fail_link /
        #: fail_node_links (health monitoring, see repro.faults.healing).
        self.fault_listeners: list[Callable[[LinkRecord], None]] = []
        #: Network-wide trace sink; switches and links consult this.
        self.tracer: "TraceRecorder | None" = None
        #: The fabric observatory, when attached (repro.obs.netscope).
        #: Late-built parts (links, lazily created chanend ports) consult
        #: this so their probes attach no matter the construction order.
        self.netscope: "NetScope | None" = None

    # ------------------------------------------------------------------
    # Topology construction
    # ------------------------------------------------------------------

    def add_node(self, node_id: int, coord: NodeCoord) -> Switch:
        """Create the switch for ``node_id`` at lattice position ``coord``."""
        if node_id in self.switches:
            raise ValueError(f"node {node_id} already exists")
        switch = Switch(self.sim, node_id, coord, self, self.frequency)
        self.switches[node_id] = switch
        self.coords[node_id] = coord
        return switch

    def connect(
        self,
        node_a: int,
        direction_ab: Direction,
        node_b: int,
        direction_ba: Direction,
        spec: LinkSpec,
        count: int = 1,
    ) -> None:
        """Wire ``count`` full-duplex links between two nodes.

        ``direction_ab`` is the direction the link leaves ``node_a``
        (e.g. SOUTH), ``direction_ba`` the direction it leaves ``node_b``
        (normally the opposite compass point, or INTERNAL for the
        in-package pair).
        """
        switch_a = self.switches[node_a]
        switch_b = self.switches[node_b]
        base = self._pair_counts.get((node_a, node_b), 0)
        self._pair_counts[(node_a, node_b)] = base + count
        self._pair_counts[(node_b, node_a)] = base + count
        for i in range(base, base + count):
            forward = HalfLink(
                self.sim, spec,
                f"{switch_a.name}->{switch_b.name}#{i}",
                self.use_operating_rate,
            )
            backward = HalfLink(
                self.sim, spec,
                f"{switch_b.name}->{switch_a.name}#{i}",
                self.use_operating_rate,
            )
            switch_a.add_outgoing(direction_ab, forward)
            switch_b.add_incoming(forward)
            switch_b.add_outgoing(direction_ba, backward)
            switch_a.add_incoming(backward)
            forward.tracer = self.tracer
            backward.tracer = self.tracer
            self.links.extend((forward, backward))
            record = LinkRecord(node_a, node_b, direction_ab, direction_ba,
                                forward, backward)
            self.link_records.append(record)
            if self.netscope is not None:
                self.netscope.attach_record(record)
        if self.routing_tables is not None:
            # Late wiring under software routing (e.g. an Ethernet
            # bridge attached to a mesh/torus): fold the new links in.
            self.use_table_routing()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def register_leaf(
        self,
        node_id: int,
        anchor_node: int,
        from_anchor: Direction,
        to_anchor: Direction,
    ) -> None:
        """Mark ``node_id`` as a leaf hanging off ``anchor_node``.

        Leaves (Ethernet bridges) sit at lattice coordinates outside the
        core grid; routes toward them travel the lattice to the anchor
        and take the final hop, and routes *from* them leave via their
        single link — they never carry transit traffic.
        """
        self._leaves[node_id] = (anchor_node, from_anchor, to_anchor)

    # -- link failures & software routing tables (paper §V.A: "New
    # -- routing algorithms can simply be programmed in software") --------

    def find_link(self, node_a: int, node_b: int, index: int = 0) -> LinkRecord:
        """The ``index``-th link-pair record between two nodes."""
        matches = [
            record for record in self.link_records
            if {record.node_a, record.node_b} == {node_a, node_b}
        ]
        if not matches:
            raise RoutingError(f"no link between nodes {node_a} and {node_b}")
        if index >= len(matches):
            raise RoutingError(
                f"only {len(matches)} links between {node_a} and {node_b}"
            )
        return matches[index]

    def fail_link(
        self, node_a: int, node_b: int, index: int = 0, force: bool = False
    ) -> LinkRecord:
        """Fail the ``index``-th link pair between two nodes (both ways).

        Models the edge-connector failures of §IV-B.  By default only
        idle links may fail; pass ``force=True`` for a *mid-run* failure
        (in-flight tokens dropped, severed routes flushed — see
        :meth:`repro.network.link.HalfLink.fail`).  Failing a pair that
        already failed raises :class:`RoutingError`.  When software
        routing tables are active they are recomputed immediately, and
        every registered fault listener is notified.
        """
        record = self.find_link(node_a, node_b, index)
        if not record.healthy:
            raise RoutingError(
                f"link {index} between nodes {node_a} and {node_b} "
                "already failed"
            )
        record.forward.fail(force=force)
        record.backward.fail(force=force)
        if self.routing_tables is not None:
            self.use_table_routing()
        for listener in self.fault_listeners:
            listener(record)
        return record

    def fail_node_links(self, node_id: int, force: bool = False) -> list[LinkRecord]:
        """Fail every healthy link pair touching ``node_id`` (switch death).

        Returns the records failed.  Routing tables are recomputed once,
        after the last pair dies.
        """
        failed: list[LinkRecord] = []
        for record in self.link_records:
            if node_id not in (record.node_a, record.node_b):
                continue
            if not record.healthy:
                continue
            record.forward.fail(force=force)
            record.backward.fail(force=force)
            failed.append(record)
        if not failed:
            raise RoutingError(f"node {node_id} has no healthy links to fail")
        if self.routing_tables is not None:
            self.use_table_routing()
        for record in failed:
            for listener in self.fault_listeners:
                listener(record)
        return failed

    def use_table_routing(self) -> None:
        """Compute shortest-path routing tables over *healthy* links.

        Replaces the coordinate policy with per-node next-hop tables —
        the software-programmable routing the paper describes.  Tables
        are recomputed automatically on later :meth:`fail_link` calls.
        """
        import networkx as nx

        graph = nx.MultiGraph()
        graph.add_nodes_from(self.coords)
        directions: dict[tuple[int, int], Direction] = {}
        for record in self.link_records:
            if not record.healthy:
                continue
            graph.add_edge(record.node_a, record.node_b)
            directions.setdefault((record.node_a, record.node_b),
                                  record.direction_ab)
            directions.setdefault((record.node_b, record.node_a),
                                  record.direction_ba)
        tables: dict[int, dict[int, Direction]] = {n: {} for n in self.coords}
        for dest in self.coords:
            try:
                paths = nx.single_source_shortest_path(graph, dest)
            except nx.NetworkXError:
                continue
            for node, path in paths.items():
                if len(path) < 2:
                    continue
                # path runs dest -> ... -> node; the node's next hop
                # toward dest is the previous element.
                next_hop = path[-2]
                tables[node][dest] = directions[(node, next_hop)]
        self.routing_tables = tables

    def use_coordinate_routing(self) -> None:
        """Return to the built-in dimension-order coordinate policy."""
        self.routing_tables = None

    def next_direction(self, current_node: int, dest_node: int) -> Direction:
        """Next-hop direction from ``current_node`` toward ``dest_node``."""
        if dest_node not in self.coords:
            raise RoutingError(f"unknown destination node {dest_node}")
        if self.routing_tables is not None:
            direction = self.routing_tables.get(current_node, {}).get(dest_node)
            if direction is None:
                raise RoutingError(
                    f"no healthy route from node {current_node} to {dest_node}"
                )
            return direction
        current_leaf = self._leaves.get(current_node)
        if current_leaf is not None:
            return current_leaf[2]  # a leaf's only way out
        dest_leaf = self._leaves.get(dest_node)
        if dest_leaf is not None:
            anchor, from_anchor, _ = dest_leaf
            if current_node == anchor:
                return from_anchor
            dest_coord = self.coords[anchor]
        else:
            dest_coord = self.coords[dest_node]
        current_coord = self.coords[current_node]
        if current_coord == dest_coord:
            # At the anchor-equivalent position but not the destination
            # node itself (only possible for leaf destinations handled
            # above) — defensive.
            raise RoutingError(
                f"node {current_node} cannot route to co-located node {dest_node}"
            )
        return self.policy(current_coord, dest_coord)

    # ------------------------------------------------------------------
    # Fabric protocol (what cores call)
    # ------------------------------------------------------------------

    def attach_chanend(self, chanend: "Chanend") -> None:
        """Register a channel end as addressable on its node."""
        if chanend.address.node not in self.switches:
            raise RoutingError(
                f"chanend {chanend.address}: node not in fabric "
                "(add_node before creating the core)"
            )
        self._chanends[chanend.address] = chanend

    def notify_tx(self, chanend: "Chanend") -> None:
        """A chanend queued tokens; wake its switch port."""
        switch = self.switches[chanend.address.node]
        switch.chanend_port(chanend).notify_tx()

    def notify_rx_space(self, chanend: "Chanend") -> None:
        """A chanend drained; resume ports blocked delivering to it."""
        blocked = self._rx_blocked.pop(chanend.address, None)
        if blocked:
            for port in blocked:
                port.pump()

    # ------------------------------------------------------------------
    # Switch support
    # ------------------------------------------------------------------

    def local_chanend(self, address: ChanendAddress) -> "Chanend":
        """The chanend object for a local delivery."""
        chanend = self._chanends.get(address)
        if chanend is None:
            raise RoutingError(f"no chanend at {address}")
        return chanend

    def block_on_rx(self, chanend: "Chanend", port) -> None:
        """Record that ``port`` is stalled on a full receive buffer."""
        waiters = self._rx_blocked.setdefault(chanend.address, [])
        if port not in waiters:
            waiters.append(port)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def set_tracer(self, tracer: "TraceRecorder | None") -> None:
        """Attach (or detach, with ``None``) a network-wide trace sink.

        Switches record ``route_open``/``route_close``/``deliver``
        events and every half-link records ``token`` events.  Pass a
        kind-filtered or bounded :class:`~repro.sim.tracing.TraceRecorder`
        to keep long runs affordable.
        """
        self.tracer = tracer
        for link in self.links:
            link.tracer = tracer

    def register_metrics(self, registry: "MetricsRegistry") -> None:
        """Publish every switch's and link's series, plus class rollups.

        Per-class rollups (``fabric.tokens{class=...}``,
        ``fabric.bits{class=...}``) come from
        :meth:`link_stats_by_class`, the same aggregation the energy
        ledger consumes — so traffic metrics and link energy agree by
        construction.
        """
        for node_id in sorted(self.switches):
            self.switches[node_id].register_metrics(registry)
        for link in self.links:
            link.register_metrics(registry)

        def _collect_classes(emit) -> None:
            for name, stats in sorted(self.link_stats_by_class().items()):
                emit("fabric.tokens", {"class": name}, stats["tokens"])
                emit("fabric.bits", {"class": name}, stats["bits"])
            emit("fabric.routes_open", {}, self.total_routes_open)

        registry.register_collector(_collect_classes)

    def link_stats_by_class(self) -> dict[str, dict[str, float]]:
        """Aggregate tokens/bits carried per link class (for energy)."""
        stats: dict[str, dict[str, float]] = {}
        for link in self.links:
            entry = stats.setdefault(
                link.spec.name,
                {"links": 0, "tokens": 0, "bits": 0, "busy_time_ps": 0},
            )
            entry["links"] += 1
            entry["tokens"] += link.tokens_carried
            entry["bits"] += link.bits_carried
            entry["busy_time_ps"] += link.busy_time_ps
        return stats

    @property
    def total_routes_open(self) -> int:
        """Routes currently open across every switch."""
        return sum(switch.routes_open for switch in self.switches.values())

    # -- checkpointing (see repro.checkpoint) -------------------------------

    def snapshot_state(self) -> dict:
        """Canonical fabric state: routing mode, every switch and link.

        Switches and links appear in construction order, which is itself
        deterministic, so the nested state (and hence the bundle digest)
        is byte-stable across runs.
        """
        state = {
            "table_routing": self.routing_tables is not None,
            "switches": {
                str(node_id): self.switches[node_id].snapshot_state()
                for node_id in sorted(self.switches)
            },
            "links": [link.snapshot_state() for link in self.links],
        }
        if self.netscope is not None:
            state["netscope"] = self.netscope.snapshot_state()
        return state

    def restore_state(self, state: dict) -> None:
        """Verify the replayed fabric against checkpointed state."""
        from repro.sim.state import verify_state

        verify_state(self.snapshot_state(), state, "fabric")

    def __repr__(self) -> str:
        return (
            f"<SwallowFabric nodes={len(self.switches)} links={len(self.links)}>"
        )
