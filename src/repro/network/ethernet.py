"""Ethernet bridge module (paper §V.E).

The bridge "attaches to the Swallow network and is addressable as a node
in the network, but forwards all data to and from an Ethernet interface".
It is how programs are loaded and data streamed in/out; each bridge
sustains up to 80 Mbit/s of full-duplex transfer, and a slice can host up
to two of them on its south external links.

The bridge owns a node (with a switch) attached below a bottom-row
vertical-layer node; words delivered to its channel ends surface in a
host-visible queue, and the host can inject words toward any channel end
in the machine, both paced at the Ethernet rate.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.network.header import ChanendAddress
from repro.network.params import LINK_BOARD_VERTICAL
from repro.network.routing import Direction, Layer, NodeCoord
from repro.network.token import CT_END, control_token, word_to_tokens
from repro.network.topology import SLICE_PACKAGES_X, SwallowTopology
from repro.sim import PS_PER_S
from repro.xs1.chanend import Chanend

#: Full-duplex data rate of one bridge (paper: 80 Mbit/s).
ETHERNET_BITRATE = 80_000_000

#: Bridges a slice can host (paper: two, on the south links).
BRIDGES_PER_SLICE = 2


class _BridgeNodeShim:
    """Duck-typed stand-in for :class:`~repro.xs1.core.XCore` so the
    bridge can own ordinary channel ends."""

    def __init__(self, sim, node_id, fabric):
        self.sim = sim
        self.node_id = node_id
        self.fabric = fabric
        self.name = f"ethbridge{node_id}"


@dataclass
class ReceivedWord:
    """One word that crossed the bridge toward the host."""

    time_ps: int
    chanend_index: int
    value: int


class EthernetBridge:
    """A bridge node attached to a Swallow topology.

    Use :meth:`attach` to create one.  ``host_receive`` drains words the
    network sent to the bridge; :meth:`host_send_words` streams words into
    the machine at the Ethernet rate.
    """

    def __init__(self, topology: SwallowTopology, node_id: int, column: int):
        self.topology = topology
        self.sim = topology.sim
        self.node_id = node_id
        self.column = column
        self._shim = _BridgeNodeShim(self.sim, node_id, topology.fabric)
        self._chanends = [Chanend(self._shim, i) for i in range(8)]
        for chanend in self._chanends:
            chanend.allocated = True
            topology.fabric.attach_chanend(chanend)
        self._host_queue: deque[ReceivedWord] = deque()
        self._egress_busy_until = 0
        self._ingress_busy_until = 0
        self.bits_in = 0
        self.bits_out = 0
        for chanend in self._chanends:
            chanend.on_deliver = self._on_deliver

    # -- construction -----------------------------------------------------------

    @classmethod
    def attach(cls, topology: SwallowTopology, column: int = 0) -> "EthernetBridge":
        """Attach a bridge below the bottom-row vertical node of ``column``.

        The bridge becomes a new network node one row south of the grid,
        linked by an on-board-class link (it sits on the slice PCB).
        """
        if not 0 <= column < topology.packages_x:
            raise ValueError(f"column {column} outside grid of {topology.packages_x}")
        bottom_y = topology.packages_y - 1
        anchor = topology.node_at(column, bottom_y, Layer.VERTICAL)
        node_id = max(topology.fabric.coords) + 1
        coord = NodeCoord(column, bottom_y + 1, Layer.VERTICAL)
        topology.fabric.add_node(node_id, coord)
        topology.fabric.connect(
            anchor, Direction.SOUTH, node_id, Direction.NORTH, LINK_BOARD_VERTICAL
        )
        topology.fabric.register_leaf(
            node_id, anchor, from_anchor=Direction.SOUTH, to_anchor=Direction.NORTH
        )
        return cls(topology, node_id, column)

    # -- network-facing addresses ---------------------------------------------

    def endpoint(self, index: int = 0) -> ChanendAddress:
        """Address programs should ``setd`` to reach the host."""
        return self._chanends[index].address

    # -- egress: network -> host -------------------------------------------------

    def _on_deliver(self, chanend: Chanend) -> None:
        """A token reached the bridge; schedule a paced egress drain."""
        word_time = round(PS_PER_S / ETHERNET_BITRATE * 32)
        at = max(self.sim.now, self._egress_busy_until)
        self._egress_busy_until = at + word_time
        self.sim.schedule_at(
            self._egress_busy_until, lambda: self._drain_chanend(chanend)
        )

    def _drain_chanend(self, chanend: Chanend) -> None:
        # Discard route-closing control tokens.
        while chanend.rx_available() and chanend.rx[0].is_control:
            chanend.pop_rx()
        while chanend.rx_available() >= 4:
            if any(chanend.rx[i].is_control for i in range(4)):
                break
            value = 0
            for _ in range(4):
                value = (value << 8) | chanend.pop_rx().value
            self._host_queue.append(
                ReceivedWord(self.sim.now, chanend.index, value)
            )
            self.bits_out += 32
        while chanend.rx_available() and chanend.rx[0].is_control:
            chanend.pop_rx()

    def host_receive(self) -> list[ReceivedWord]:
        """Take everything that has crossed to the host so far."""
        items = list(self._host_queue)
        self._host_queue.clear()
        return items

    # -- ingress: host -> network --------------------------------------------------

    def host_send_words(
        self,
        dest: ChanendAddress,
        words: list[int],
        source_index: int = 0,
        close: bool = True,
    ) -> int:
        """Stream ``words`` to ``dest``, paced at the Ethernet rate.

        Returns the simulation time (ps) at which the last word enters
        the network side of the bridge.
        """
        chanend = self._chanends[source_index]
        word_time = round(PS_PER_S / ETHERNET_BITRATE * 32)
        start = max(self.sim.now, self._ingress_busy_until)
        at = start

        def make_push(value, set_dest_first, close_after):
            def push():
                if set_dest_first:
                    chanend.set_dest(dest)
                tokens = word_to_tokens(value)
                if close_after:
                    tokens = tokens + [control_token(CT_END)]
                chanend.push_tx(tokens)

            return push

        for position, word in enumerate(words):
            at = start + position * word_time
            self.sim.schedule_at(
                at,
                make_push(
                    word,
                    set_dest_first=(position == 0),
                    close_after=(close and position == len(words) - 1),
                ),
            )
            self.bits_in += 32
        self._ingress_busy_until = at + word_time
        return self._ingress_busy_until

    def transfer_time_s(self, payload_bits: int) -> float:
        """Time for ``payload_bits`` to cross the bridge at 80 Mbit/s."""
        if payload_bits < 0:
            raise ValueError("bit count must be non-negative")
        return payload_bits / ETHERNET_BITRATE
