"""Synthetic traffic generators for network characterisation.

The paper evaluates Swallow's interconnect with targeted measurements;
for broader exploration (and the load/latency ablations) this module
provides the standard NoC patterns — uniform random, bit-complement,
hotspot, nearest-neighbour — as deterministic, seeded behavioural
workloads over a :class:`~repro.network.topology.SwallowTopology`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.network.token import CT_END
from repro.network.topology import SwallowTopology

if TYPE_CHECKING:
    from repro.xs1.core import XCore


@dataclass
class TrafficStats:
    """Delivery record of one traffic run."""

    sent: int = 0
    received: int = 0
    latencies_ps: list[int] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        """All injected packets arrived."""
        return self.received == self.sent and self.sent > 0

    @property
    def mean_latency_ps(self) -> float:
        """Mean packet latency."""
        if not self.latencies_ps:
            return 0.0
        return sum(self.latencies_ps) / len(self.latencies_ps)

    @property
    def p99_latency_ps(self) -> float:
        """99th-percentile packet latency."""
        if not self.latencies_ps:
            return 0.0
        ordered = sorted(self.latencies_ps)
        return ordered[min(len(ordered) - 1, int(0.99 * len(ordered)))]


def uniform_random_pairs(node_ids: list[int], count: int, seed: int) -> list[tuple[int, int]]:
    """``count`` (src, dst) pairs drawn uniformly (src != dst)."""
    rng = random.Random(seed)
    pairs = []
    for _ in range(count):
        src = rng.choice(node_ids)
        dst = rng.choice([n for n in node_ids if n != src])
        pairs.append((src, dst))
    return pairs


def bit_complement_pairs(topology: SwallowTopology) -> list[tuple[int, int]]:
    """Each node sends to its coordinate complement (a bisection-stressing
    classic)."""
    pairs = []
    max_x = topology.packages_x - 1
    max_y = topology.packages_y - 1
    for node in topology.node_ids():
        coord = topology.coord_of(node)
        dst = topology.node_at(max_x - coord.x, max_y - coord.y, coord.layer)
        if dst != node:
            pairs.append((node, dst))
    return pairs


def hotspot_pairs(node_ids: list[int], hotspot: int, count: int, seed: int) -> list[tuple[int, int]]:
    """All packets converge on one node."""
    rng = random.Random(seed)
    sources = [n for n in node_ids if n != hotspot]
    return [(rng.choice(sources), hotspot) for _ in range(count)]


def neighbour_pairs(topology: SwallowTopology) -> list[tuple[int, int]]:
    """Each vertical-layer node sends to its package sibling."""
    pairs = []
    for package in topology.packages.values():
        pairs.append((package.vertical_node, package.horizontal_node))
    return pairs


class TrafficRun:
    """Executes a set of (src, dst) packet flows and gathers statistics.

    Each pair becomes one channel carrying ``packets`` single-word
    packets with an inter-packet compute gap, all under packet mode so
    flows interleave on shared links.
    """

    def __init__(
        self,
        topology: SwallowTopology,
        pairs: list[tuple[int, int]],
        packets: int = 4,
        gap_instructions: int = 10,
    ):
        if not pairs:
            raise ValueError("need at least one traffic pair")
        self.topology = topology
        self.sim = topology.sim
        self.pairs = pairs
        self.packets = packets
        self.gap_instructions = gap_instructions
        self.stats = TrafficStats()
        self._cores: dict[int, "XCore"] = {}

    def _core(self, node_id: int) -> "XCore":
        # Imported here (not at module scope) to break the
        # network <-> xs1 import cycle.
        from repro.xs1.core import XCore

        if node_id not in self._cores:
            self._cores[node_id] = XCore(self.sim, node_id, self.topology.fabric)
        return self._cores[node_id]

    def start(self) -> "TrafficRun":
        """Spawn all flows; call ``sim.run()`` afterwards."""
        for flow, (src, dst) in enumerate(self.pairs):
            tx = self._core(src).allocate_chanend()
            rx = self._core(dst).allocate_chanend()
            tx.set_dest(rx.address)
            self._spawn_flow(flow, src, dst, tx, rx)
        return self

    def _spawn_flow(self, flow: int, src: int, dst: int, tx, rx) -> None:
        from repro.xs1.behavioral import (
            BehavioralThread,
            CheckCt,
            Compute,
            RecvWord,
            SendCt,
            SendWord,
        )

        sim = self.sim
        stats = self.stats
        departures: list[int] = []

        def sender():
            for _ in range(self.packets):
                if self.gap_instructions:
                    yield Compute(self.gap_instructions)
                departures.append(sim.now)
                stats.sent += 1
                yield SendWord(tx, flow & 0xFFFF)
                yield SendCt(tx, CT_END)

        def receiver():
            for index in range(self.packets):
                yield RecvWord(rx)
                yield CheckCt(rx, CT_END)
                stats.received += 1
                stats.latencies_ps.append(sim.now - departures[index])

        BehavioralThread(self._core(src), sender(), name=f"traffic.s{flow}")
        BehavioralThread(self._core(dst), receiver(), name=f"traffic.r{flow}")
