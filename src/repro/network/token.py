"""Network tokens.

The XS1 interconnect moves 8-bit *tokens*: ordinary data tokens, and
control tokens that manage routes and synchronisation (the paper's §V.B:
"Routes are opened with a three byte header ... held open until the source
channel emits a closing control token").

On the wire a token is four 2-bit symbols on a five-wire link; the link
model (:mod:`repro.network.link`) handles that timing, so here a token is
just its value plus a control flag.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.obs.spans import Span

#: Control-token codes (mirrors :mod:`repro.xs1.isa`).
CT_END = 0x01
CT_PAUSE = 0x02
CT_ACK = 0x03
CT_NACK = 0x04

#: Bits per token on the wire.
TOKEN_BITS = 8

#: Tokens needed to carry one 32-bit word.
TOKENS_PER_WORD = 4

#: Route-opening header length in tokens (paper §V.B: "three byte header").
HEADER_TOKENS = 3


@dataclass(frozen=True)
class Token:
    """One 8-bit network token.

    ``span`` is an optional causal-tracing annotation (see
    :mod:`repro.obs.spans`): the span active on the sending thread when
    the token entered its transmit buffer.  It rides along every hop so
    links can charge wire energy to the originating span.  It is
    excluded from equality, repr and hashing, so digests and token
    comparisons are identical with tracing on or off.
    """

    value: int
    is_control: bool = False
    span: "Span | None" = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if not 0 <= self.value <= 0xFF:
            raise ValueError(f"token value {self.value:#x} outside 8 bits")

    @property
    def is_end(self) -> bool:
        """True for the END control token that closes a route."""
        return self.is_control and self.value == CT_END

    def __str__(self) -> str:
        kind = "CT" if self.is_control else "DT"
        return f"{kind}:{self.value:02x}"


def data_token(value: int) -> Token:
    """Build a data token from the low 8 bits of ``value``."""
    return Token(value & 0xFF)


def control_token(code: int) -> Token:
    """Build a control token."""
    return Token(code, is_control=True)


def word_to_tokens(word: int) -> list[Token]:
    """Split a 32-bit word into four data tokens, most-significant first."""
    word &= 0xFFFF_FFFF
    return [Token((word >> shift) & 0xFF) for shift in (24, 16, 8, 0)]


def tokens_to_word(tokens: list[Token]) -> int:
    """Reassemble four data tokens (MSB first) into a 32-bit word."""
    if len(tokens) != TOKENS_PER_WORD:
        raise ValueError(f"need {TOKENS_PER_WORD} tokens, got {len(tokens)}")
    word = 0
    for token in tokens:
        if token.is_control:
            raise ValueError("control token inside word data")
        word = (word << 8) | token.value
    return word
