"""Physical link model.

A Swallow link is five wires per direction carrying 8-bit tokens as four
2-bit symbols.  Here each direction is a :class:`HalfLink` that serializes
one token at a time (the class's token time) into the input buffer of the
far switch, under credit-based flow control: a token may only be launched
while the far buffer has space, so backpressure propagates hop by hop —
"Switches use wormhole routing with credit-based flow control" (§V.B).

A half-link is also the unit of *route allocation*: wormhole routing holds
a link from the route-opening header until the closing END control token
(or forever, for circuit-switched channels).
"""

from __future__ import annotations

from collections import deque
from dataclasses import replace
from typing import TYPE_CHECKING, Callable

from repro.network.params import SWITCH_BUFFER_TOKENS, LinkSpec
from repro.network.token import HEADER_TOKENS, TOKEN_BITS, Token

from repro.sim import Simulator

if TYPE_CHECKING:
    from repro.network.switch import InputPort
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.netscope import LinkProbe
    from repro.sim.engine import EventHandle
    from repro.sim.tracing import TraceRecorder

#: A flaky-link hook: given the token about to be serialized, return the
#: token to deliver, a replacement (corruption), or ``None`` to drop it.
FaultHook = Callable[[Token], "Token | None"]


class LinkFailedError(RuntimeError):
    """Raised when an operation is attempted on an already-failed link."""


class HalfLink:
    """One direction of a physical link: serializer + credits + allocation."""

    def __init__(
        self,
        sim: Simulator,
        spec: LinkSpec,
        name: str,
        use_operating_rate: bool = False,
    ):
        self.sim = sim
        self.spec = spec
        self.name = name
        self.token_time_ps = spec.token_time_ps(use_operating_rate)
        self.sink: "InputPort | None" = None
        self.credits = SWITCH_BUFFER_TOKENS
        self.busy = False
        self.holder: "InputPort | None" = None
        self.failed = False
        self.tokens_carried = 0
        self.bits_carried = 0
        self.busy_time_ps = 0
        #: Fault-injection counters (see :mod:`repro.faults`).
        self.tokens_dropped = 0
        self.tokens_corrupted = 0
        #: Flaky-link hook installed by a fault campaign; header and
        #: control tokens are never passed to it (the low-level symbol
        #: encoding protects them), only payload data tokens.
        self.fault_hook: FaultHook | None = None
        self._inflight: "EventHandle | None" = None
        self._sent_since_seize = 0
        #: Optional trace sink (set via SwallowFabric.set_tracer).
        self.tracer: "TraceRecorder | None" = None
        #: Optional netscope probe (see :mod:`repro.obs.netscope`).
        self.ns: "LinkProbe | None" = None

    # -- route allocation ---------------------------------------------------

    @property
    def free(self) -> bool:
        """True when no route currently holds this link (and it works)."""
        return self.holder is None and not self.failed

    def fail(self, force: bool = False) -> None:
        """Mark the link failed (edge-connector yield, §IV-B).

        Without ``force`` only idle links may fail — fail before
        injecting traffic that would use it, then re-route with table
        routing (:meth:`repro.network.fabric.SwallowFabric.use_table_routing`).

        With ``force=True`` the link may die *mid-run*: any in-flight
        token is dropped, the downstream remainder of the severed route
        is flushed hop by hop (buffered and in-flight tokens discarded,
        held links released to their waiters), and the upstream holder
        discards the rest of the current packet up to its closing END
        token.  Failing an already-failed link raises
        :class:`LinkFailedError` either way.
        """
        if self.failed:
            raise LinkFailedError(f"{self.name}: link already failed")
        if not force and (self.holder is not None or self.busy):
            raise RuntimeError(
                f"{self.name}: cannot fail a link in use (pass force=True "
                "to model a mid-run failure)"
            )
        self.failed = True
        if not force:
            return
        self.abort_inflight()
        if self.sink is not None:
            self.sink.flush_stale()
        if self.holder is not None:
            self.holder.sever_route()

    def abort_inflight(self) -> None:
        """Drop the token currently being serialized, if any.

        Cancels the pending delivery event, refunds the credit the send
        consumed (the far buffer never held the token) and counts the
        loss.  Used by forced failures and downstream route flushing.
        """
        if self.busy and self._inflight is not None:
            self._inflight.cancel()
            self._inflight = None
            self.busy = False
            self.credits += 1
            self.tokens_dropped += 1
            if self.tracer is not None:
                self.tracer.record(self.sim.now, self.name, "token_dropped",
                                   "in-flight")

    def seize(self, port: "InputPort") -> None:
        """Allocate the link to a route (caller checked :attr:`free`)."""
        assert self.holder is None, f"{self.name} already held"
        self.holder = port
        self._sent_since_seize = 0

    def release(self, port: "InputPort") -> None:
        """Release the link at route close."""
        assert self.holder is port, f"{self.name} released by non-holder"
        self.holder = None

    # -- token transfer -----------------------------------------------------

    def can_send(self) -> bool:
        """True when a token can be launched right now."""
        return not self.busy and self.credits > 0

    def send(self, token: Token, on_done: Callable[[], None] | None = None) -> None:
        """Launch one token; it arrives after the serialization time.

        A flaky-link :attr:`fault_hook` may drop or corrupt *payload*
        data tokens.  Header tokens (the first :data:`HEADER_TOKENS` of
        each seized route) and control tokens are exempt — corrupting
        them would misroute or wedge the wormhole network, whereas the
        real link protocol's control symbols are separately encoded.
        Dropped tokens still cost serialization time and link energy;
        their credit is refunded at delivery time (the far buffer never
        held them).
        """
        assert self.can_send(), f"{self.name}: send while busy or out of credit"
        assert self.sink is not None, f"{self.name}: unwired link"
        outcome: Token | None = token
        if (
            self.fault_hook is not None
            and not token.is_control
            and self._sent_since_seize >= HEADER_TOKENS
        ):
            outcome = self.fault_hook(token)
            if (
                outcome is not None
                and outcome is not token
                and outcome.span is None
                and token.span is not None
            ):
                # A corrupting hook rebuilt the token; keep the causal
                # span riding so downstream hops stay attributed.
                outcome = replace(outcome, span=token.span)
        self._sent_since_seize += 1
        self.busy = True
        self.credits -= 1
        self.tokens_carried += 1
        self.bits_carried += TOKEN_BITS
        self.busy_time_ps += self.token_time_ps
        if self.ns is not None:
            self.ns.on_send(self.sim.now, TOKEN_BITS, self.token_time_ps)
        if token.span is not None:
            # Charge the wire bits to the originating span, per link
            # class, mirroring bits_carried: dropped and corrupted
            # tokens still cost serialization energy (§V, Table I).
            token.span.add_wire_bits(self.spec.name, TOKEN_BITS)
        if outcome is None:
            self.tokens_dropped += 1
            if self.tracer is not None:
                self.tracer.record(self.sim.now, self.name, "token_dropped",
                                   str(token))
            self._inflight = self.sim.schedule(
                self.token_time_ps, lambda: self._dropped(on_done)
            )
            return
        if outcome is not token:
            self.tokens_corrupted += 1
            if self.tracer is not None:
                self.tracer.record(self.sim.now, self.name, "token_corrupted",
                                   str(token), str(outcome))
        delivered = outcome
        if self.tracer is not None:
            self.tracer.record(self.sim.now, self.name, "token", str(delivered))
        self._inflight = self.sim.schedule(
            self.token_time_ps, lambda: self._delivered(delivered, on_done)
        )

    def _delivered(self, token: Token, on_done: Callable[[], None] | None) -> None:
        self.busy = False
        self._inflight = None
        self.sink.accept(token)
        if on_done is not None:
            on_done()
        if self.holder is not None:
            self.holder.pump()

    def _dropped(self, on_done: Callable[[], None] | None) -> None:
        """A flaky link finished serializing a token that was lost."""
        self.busy = False
        self._inflight = None
        self.credits += 1          # the far buffer never received it
        if on_done is not None:
            on_done()
        if self.holder is not None:
            self.holder.pump()

    def return_credit(self) -> None:
        """The far buffer freed a slot; the holder may continue."""
        self.credits += 1
        if self.holder is not None:
            self.holder.pump()

    def utilization(self, elapsed_ps: int) -> float:
        """Fraction of ``elapsed_ps`` this link spent serializing tokens."""
        if elapsed_ps <= 0:
            return 0.0
        return min(1.0, self.busy_time_ps / elapsed_ps)

    # -- checkpointing (see repro.checkpoint) -------------------------------

    def snapshot_state(self) -> dict:
        """Canonical link state: credits, allocation, wire counters.

        In-flight tokens are represented by ``busy`` plus the credit
        count — the serialization event itself is re-registered by the
        restore replay, which must land the link back in exactly this
        state.
        """
        return {
            "name": self.name,
            "failed": self.failed,
            "busy": self.busy,
            "credits": self.credits,
            "held": self.holder is not None,
            "fault_hook": self.fault_hook is not None,
            "tokens_carried": self.tokens_carried,
            "bits_carried": self.bits_carried,
            "busy_time_ps": self.busy_time_ps,
            "tokens_dropped": self.tokens_dropped,
            "tokens_corrupted": self.tokens_corrupted,
        }

    def restore_state(self, state: dict) -> None:
        """Verify a replayed link against checkpointed state."""
        from repro.sim.state import verify_state

        verify_state(self.snapshot_state(), state, self.name)

    def register_metrics(self, registry: "MetricsRegistry") -> None:
        """Publish this half-link's traffic series (lazily collected).

        Series: ``link.tokens{link=...}``, ``link.bits{link=...}`` and
        ``link.utilization{link=...}`` (fraction of elapsed sim time
        spent serializing).
        """
        labels = {"link": self.name}
        registry.counter_fn("link.tokens",
                            lambda: self.tokens_carried, **labels)
        registry.counter_fn("link.bits", lambda: self.bits_carried, **labels)
        registry.gauge_fn("link.utilization",
                          lambda: self.utilization(self.sim.now), **labels)

    def __repr__(self) -> str:
        return f"<HalfLink {self.name} {self.spec.name} {'busy' if self.busy else 'idle'}>"


class DirectionGroup:
    """All half-links leaving a switch in one direction.

    Models the paper's link aggregation: "Multiple links can be assigned
    to the same routing direction, where a new communication will use the
    next unused link" (§V.B).  Routes that find every link held queue FIFO
    and are granted links as routes close.

    **Escape-lane reservation.**  Aggregated groups (the four in-package
    links) dedicate their last link — and hence that link's input buffer —
    to *exit* layer crossings: the final hop of a multi-hop route, which
    only ever waits on local delivery and therefore always drains.
    Transit ("entry") crossings and single-hop in-package messages
    ("direct") share the other three links and never touch the escape
    link, so no transit credit cycle can close through it.  This breaks
    the wormhole deadlock that otherwise wedges bisection-stressing
    traffic, and matches the paper's own provision: "Provided no more
    than three links are used for channel switching, packeted data can
    still flow through the network" (§V.B).  Single-link groups ignore
    lanes.
    """

    LANES = ("exit", "entry", "direct", "any")

    def __init__(self, name: str):
        self.name = name
        self.links: list[HalfLink] = []
        self.waiters: dict[str, deque["InputPort"]] = {
            lane: deque() for lane in self.LANES
        }

    def add(self, link: HalfLink) -> None:
        """Register an outgoing half-link in this direction."""
        self.links.append(link)

    def _lane_links(self, lane: str) -> list[HalfLink]:
        if lane not in self.LANES:
            raise ValueError(f"unknown lane {lane!r}")
        if len(self.links) < 2 or lane == "any":
            return self.links
        if lane == "exit":
            return self.links[-1:]     # the dedicated escape link
        return self.links[:-1]         # entry/direct: the other links

    def try_allocate(self, port: "InputPort", lane: str = "any") -> HalfLink | None:
        """Grant the next unused link of ``lane``, or queue the port."""
        for link in self._lane_links(lane):
            if link.free:
                link.seize(port)
                return link
        if port not in self.waiters[lane]:
            self.waiters[lane].append(port)
        return None

    def release(self, link: HalfLink, port: "InputPort") -> None:
        """Close a route; hand the link to the oldest eligible waiter.

        A link that failed while held is released but never re-granted;
        its waiters stay queued for the lane's surviving links.
        """
        link.release(port)
        if link.failed:
            return
        for lane in self.LANES:
            if link in self._lane_links(lane) and self.waiters[lane]:
                next_port = self.waiters[lane].popleft()
                link.seize(next_port)
                next_port.granted_link(link)
                return

    def forget(self, port: "InputPort") -> None:
        """Drop ``port`` from every lane's wait queue (route severed)."""
        for lane in self.LANES:
            try:
                self.waiters[lane].remove(port)
            except ValueError:
                pass

    @property
    def all_waiters(self) -> list["InputPort"]:
        """Every queued port, across lanes."""
        return [port for lane in self.LANES for port in self.waiters[lane]]

    def __repr__(self) -> str:
        held = sum(1 for link in self.links if not link.free)
        return f"<DirectionGroup {self.name} {held}/{len(self.links)} held>"
