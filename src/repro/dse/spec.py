"""Declarative design-space sweeps: axes, objectives, identity.

A :class:`SweepSpec` is the DSE engine's unit of intent: a registered
workload, the parameters every point shares, the axes to sweep
(topology x link aggregation x slice counts x DVFS ladder x policy x
seeds — any workload parameter works), and the *objectives* the Pareto
analysis optimises over.  It expands through the farm's
:class:`~repro.farm.spec.MatrixSpec`, so a sweep inherits the farm's
content-addressed job identity: the same spec always produces the same
job list, in the same order, with the same digests.

JSON form (``repro dse submit --sweep sweep.json``)::

    {
      "workload": "demo",
      "base":  {"messages": 4},
      "sweep": {
        "topology": ["lattice", "mesh", "torus"],
        "freq_mhz": [500, 250],
        "seed":     [1, 2]
      },
      "objectives": [
        {"key": "gips", "goal": "max"},
        {"key": "mean_power_w", "goal": "min"},
        {"key": "energy_per_instr_pj", "goal": "min"}
      ]
    }

Objectives name metric keys of the report cells (see
:mod:`repro.dse.report` for the extracted set) with a ``goal`` of
``"min"`` or ``"max"``.  Omitted objectives default to the paper's
trio: GIPS (max) vs mean power (min) vs energy per instruction (min).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.checkpoint.snapshot import content_digest
from repro.farm.spec import FarmError, MatrixSpec

#: Goals an objective may declare.
GOALS = ("min", "max")

#: The paper's default trade-off trio: throughput vs power vs E/C.
DEFAULT_OBJECTIVES = (
    ("gips", "max"),
    ("mean_power_w", "min"),
    ("energy_per_instr_pj", "min"),
)


@dataclass(frozen=True)
class Objective:
    """One optimisation axis: a cell metric key plus its direction."""

    key: str
    goal: str = "min"

    def __post_init__(self) -> None:
        if not self.key:
            raise FarmError("objective needs a metric key")
        if self.goal not in GOALS:
            raise FarmError(
                f"objective {self.key!r} goal must be one of {GOALS}, "
                f"not {self.goal!r}"
            )

    def better(self, a: float, b: float) -> bool:
        """True when value ``a`` is strictly better than ``b``."""
        return a > b if self.goal == "max" else a < b

    def to_dict(self) -> dict:
        return {"key": self.key, "goal": self.goal}

    @classmethod
    def from_dict(cls, data) -> "Objective":
        if isinstance(data, Objective):
            return data
        if isinstance(data, (list, tuple)):
            key, goal = data
            return cls(key=str(key), goal=str(goal))
        return cls(key=str(data["key"]), goal=str(data.get("goal", "min")))

    def __str__(self) -> str:
        return f"{self.key}({self.goal})"


def default_objectives() -> tuple[Objective, ...]:
    """The GIPS / W / E-per-C trio as objective objects."""
    return tuple(Objective(key, goal) for key, goal in DEFAULT_OBJECTIVES)


@dataclass(frozen=True)
class SweepSpec:
    """A declarative design-space sweep plus its optimisation goals."""

    workload: str
    base: dict = field(default_factory=dict)
    sweep: dict = field(default_factory=dict)
    objectives: tuple = ()

    def __post_init__(self) -> None:
        # Delegate workload/axis validation to the farm matrix.
        self.to_matrix()
        resolved = tuple(
            Objective.from_dict(obj)
            for obj in (self.objectives or default_objectives())
        )
        keys = [obj.key for obj in resolved]
        if len(set(keys)) != len(keys):
            raise FarmError(f"duplicate objective keys: {keys}")
        object.__setattr__(self, "objectives", resolved)

    def to_matrix(self) -> MatrixSpec:
        """The farm matrix this sweep expands through."""
        return MatrixSpec(
            workload=self.workload, base=dict(self.base),
            sweep=dict(self.sweep),
        )

    def jobs(self):
        """The expanded job list (deterministic order, deduped)."""
        return self.to_matrix().jobs()

    @property
    def num_points(self) -> int:
        """Number of distinct design points (after dedupe)."""
        return len(self.jobs())

    @property
    def digest(self) -> str:
        """SHA-256 of the canonical spec — the sweep's content address."""
        return content_digest(self.to_dict())

    @property
    def sweep_id(self) -> str:
        """Short content-addressed id (first 12 digest hex chars)."""
        return self.digest[:12]

    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "base": dict(self.base),
            "sweep": {k: list(v) for k, v in self.sweep.items()},
            "objectives": [obj.to_dict() for obj in self.objectives],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SweepSpec":
        if "workload" not in data:
            raise FarmError("sweep spec needs a 'workload' field")
        return cls(
            workload=data["workload"],
            base=dict(data.get("base", {})),
            sweep=dict(data.get("sweep", {})),
            objectives=tuple(data.get("objectives", ())),
        )

    @classmethod
    def from_file(cls, path) -> "SweepSpec":
        with open(path, encoding="utf-8") as handle:
            try:
                data = json.load(handle)
            except json.JSONDecodeError as error:
                raise FarmError(f"unparseable sweep spec: {error}") from error
        return cls.from_dict(data)

    def __repr__(self) -> str:
        return (
            f"<SweepSpec {self.workload!r} {len(self.sweep)} axes "
            f"{self.num_points} points {self.sweep_id}>"
        )
