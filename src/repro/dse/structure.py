"""Static structural summaries of topology design points.

The fig 5/6/7 structural figures (chips and cores per slice, per-node
link complement, layer-transition bound, bisection bandwidth) are pure
functions of the wiring — no simulation needed.  This module computes
them from any :class:`~repro.network.topology.SwallowTopology`, in any
variant, so the fig567 bench, the DSE docs, and sweep-time structure
comparisons all share one code path.

Graph-derived figures (diameter, mean hop distance) come from the same
:meth:`~repro.network.topology.SwallowTopology.graph` the live fabric
is wired from, so they hold for mesh and torus as much as for the
paper's lattice; the layer-transition bound is a lattice-routing
concept and reads None for the other variants.
"""

from __future__ import annotations

import networkx as nx

from repro.analysis import vertical_bisection_bps
from repro.network.routing import Layer, layer_transitions
from repro.network.topology import SwallowTopology
from repro.sim import Simulator


def build_topology(params: dict | None = None) -> SwallowTopology:
    """A topology from sweep-style params (no cores, analysis only).

    Accepts the same keys the workloads sweep: ``slices_x``,
    ``slices_y``, ``topology``, ``link_aggregation``.
    """
    params = dict(params or {})
    return SwallowTopology(
        Simulator(),
        slices_x=int(params.get("slices_x", 1)),
        slices_y=int(params.get("slices_y", 1)),
        topology=str(params.get("topology", "lattice")),
        link_aggregation=int(params.get("link_aggregation", 1)),
    )


def structure_summary(topology: SwallowTopology) -> dict:
    """Every structural figure of one topology, as plain data."""
    graph = topology.graph()
    by_class: dict[str, int] = {}
    for _, _, data in graph.edges(data=True):
        name = data["spec"].name
        by_class[name] = by_class.get(name, 0) + 1
    package = topology.packages[(0, 0)]
    internal = graph.get_edge_data(
        package.vertical_node, package.horizontal_node
    )
    node_ids = topology.node_ids()
    vertical_nodes = sum(
        1 for n in node_ids
        if topology.coord_of(n).layer is Layer.VERTICAL
    )
    max_transitions = None
    if topology.topology_name == "lattice":
        max_transitions = max(
            layer_transitions(topology.coord_of(a), topology.coord_of(b))
            for a in node_ids for b in node_ids
        )
    simple = nx.Graph(graph)
    lengths = dict(nx.all_pairs_shortest_path_length(simple))
    distances = [
        lengths[a][b] for a in node_ids for b in node_ids if a != b
    ]
    return {
        "topology": topology.topology_name,
        "slices_x": topology.slices_x,
        "slices_y": topology.slices_y,
        "link_aggregation": topology.link_aggregation,
        "cores": topology.num_nodes,
        "packages": len(topology.packages),
        "vertical_nodes": vertical_nodes,
        "internal_links_per_package": len(internal) if internal else 0,
        "links_by_class": {name: by_class[name] for name in sorted(by_class)},
        "total_link_pairs": graph.number_of_edges(),
        "max_layer_transitions": max_transitions,
        "diameter_hops": max(distances) if distances else 0,
        "mean_hops": (
            sum(distances) / len(distances) if distances else 0.0
        ),
        "vertical_bisection_bps": vertical_bisection_bps(topology),
    }


def structure_sweep(points: list[dict]) -> list[dict]:
    """Structural summaries of a list of sweep-style param dicts.

    The static companion to a simulated DSE sweep: wiring figures for
    each design point, in listed order, without running any workload.
    """
    return [structure_summary(build_topology(params)) for params in points]
