"""repro.dse — design-space exploration with Pareto-front extraction.

The engine the ROADMAP's DSE item asks for: declarative sweeps over
topology x link aggregation x slice counts x DVFS points x policy x
seeds (:class:`SweepSpec`), executed through the campaign farm with
content-addressed caching (:func:`run_sweep`) or in-process
(:func:`run_inline`), folded into the canonical ``dse-report/1``
document (:mod:`repro.dse.report`), and analysed into non-dominated
fronts with dominance provenance and knee points
(:mod:`repro.dse.pareto`).  Visual exports live in
:mod:`repro.dse.exports`; static wiring summaries in
:mod:`repro.dse.structure`.  ``repro dse`` is the CLI.
"""

from repro.dse.engine import (
    collect_farm_report,
    collect_report,
    load_spec,
    run_inline,
    run_sweep,
    save_spec,
    submit_sweep,
)
from repro.dse.exports import fleet_overlay, sweep_timeline
from repro.dse.pareto import (
    ascii_scatter,
    front_csv,
    front_json,
    pareto_acceptance_check,
    pareto_from_farm_report,
    pareto_front,
)
from repro.dse.report import extract_metrics, fold_results, report_json
from repro.dse.spec import Objective, SweepSpec, default_objectives
from repro.dse.structure import structure_summary, structure_sweep

__all__ = [
    "Objective",
    "SweepSpec",
    "ascii_scatter",
    "collect_farm_report",
    "collect_report",
    "default_objectives",
    "extract_metrics",
    "fleet_overlay",
    "fold_results",
    "front_csv",
    "front_json",
    "load_spec",
    "pareto_acceptance_check",
    "pareto_from_farm_report",
    "pareto_front",
    "report_json",
    "run_inline",
    "run_sweep",
    "save_spec",
    "structure_summary",
    "structure_sweep",
    "submit_sweep",
    "sweep_timeline",
]
