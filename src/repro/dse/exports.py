"""Visual exports: fleet heat-map overlays and sweep timelines.

Two views make a folded sweep legible (the Kerrison & Eder
network-energy visualisation shapes, arXiv:1509.02830):

* :func:`fleet_overlay` — the campaign's merged netscope heat maps
  (one per grid shape; see :func:`repro.obs.netscope.fleet_heatmap`)
  annotated with Pareto-front membership, so "which design points are
  worth looking at" and "where their traffic went" live in one
  document;
* :func:`sweep_timeline` — a Chrome-trace (Perfetto-loadable) timeline
  of the sweep: one complete event per design point, laid out in job
  order along each sweep axis value's own track, with an energy
  counter running underneath.  Time is *simulated* time accumulated in
  job order, so the trace is a pure function of the report — byte
  stable, like every other export here.
"""

from __future__ import annotations

from repro.checkpoint.snapshot import canonical_json

#: Overlay document schema tag.
OVERLAY_SCHEMA = "dse-fleet-overlay/1"


def fleet_overlay(queue, cache, front: dict | None = None) -> dict | None:
    """The campaign fleet heat map, tagged with front membership.

    Returns None when no job carried a heat map (netscope is opt-in
    via the ``"netscope": true`` workload param).  With a
    ``pareto-front/1`` document, the overlay records which completed
    jobs sit on the front (and the knee), so heat-map viewers can dim
    dominated configurations.
    """
    from repro.farm.pool import farm_heatmap

    fleet = farm_heatmap(queue, cache)
    if fleet is None:
        return None
    overlay = {
        "schema": OVERLAY_SCHEMA,
        "fleet": fleet,
        "front_jobs": [],
        "knee": None,
    }
    if front is not None:
        overlay["front_jobs"] = [p["job_id"] for p in front["front"]]
        overlay["knee"] = front.get("knee")
    return overlay


def overlay_json(overlay: dict) -> str:
    """The overlay as canonical JSON, newline-terminated."""
    return canonical_json(overlay) + "\n"


def _track_axis(report: dict) -> str | None:
    """The sweep axis that names the timeline's tracks.

    Prefer ``topology`` (the natural visual grouping), else the first
    sorted axis; None for a single-point sweep with no axes.
    """
    axes = sorted(report["spec"].get("sweep", {}))
    if not axes:
        return None
    return "topology" if "topology" in axes else axes[0]


def sweep_timeline(report: dict, front: dict | None = None) -> dict:
    """The sweep as a Chrome-trace document (``traceEvents`` format).

    Each design point becomes a complete event (``"ph": "X"``) whose
    duration is the point's simulated time; points are laid end to end
    in job order on one thread per track-axis value.  A ``sweep
    energy`` counter track accumulates total energy across the sweep.
    Front/knee membership (when a front document is given) lands in
    each event's args.
    """
    track_axis = _track_axis(report)
    front_ids = set()
    knee = None
    if front is not None:
        front_ids = {p["job_id"] for p in front["front"]}
        knee = front.get("knee")
    pid = 1
    events = [{
        "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
        "args": {"name": f"dse sweep {report['sweep_id']}"},
    }]
    tracks: dict[str, int] = {}
    track_clock: dict[int, float] = {}
    energy_j = 0.0
    for cell in report["cells"]:
        value = (
            str(cell["params"].get(track_axis, "-"))
            if track_axis is not None else "sweep"
        )
        tid = tracks.get(value)
        if tid is None:
            tid = tracks[value] = len(tracks) + 1
            label = (
                f"{track_axis}={value}" if track_axis is not None else value
            )
            events.append({
                "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                "args": {"name": label},
            })
            track_clock[tid] = 0.0
        metrics = cell["metrics"]
        elapsed_us = (
            (metrics["elapsed_s"] or 0.0) * 1e6 if metrics else 0.0
        )
        start_us = track_clock[tid]
        track_clock[tid] = start_us + max(elapsed_us, 0.001)
        args = {
            "job_id": cell["job_id"],
            "params": dict(cell["params"]),
            "survived": cell["survived"],
            "front": cell["job_id"] in front_ids,
            "knee": cell["job_id"] == knee,
        }
        if metrics:
            args["gips"] = metrics["gips"]
            args["mean_power_w"] = metrics["mean_power_w"]
            args["energy_per_instr_pj"] = metrics["energy_per_instr_pj"]
            energy_j += metrics["total_energy_j"] or 0.0
        marker = "K " if args["knee"] else ("* " if args["front"] else "")
        events.append({
            "name": f"{marker}{cell['job_id']}",
            "ph": "X", "pid": pid, "tid": tid,
            "ts": start_us, "dur": max(elapsed_us, 0.001),
            "cat": "dse", "args": args,
        })
        events.append({
            "name": "sweep energy (J)", "ph": "C", "pid": pid,
            "ts": track_clock[tid],
            "args": {"total_energy_j": energy_j},
        })
    return {"traceEvents": events, "displayTimeUnit": "ns"}


def timeline_json(timeline: dict) -> str:
    """The timeline as canonical JSON, newline-terminated."""
    return canonical_json(timeline) + "\n"
