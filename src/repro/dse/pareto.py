"""Pareto analysis: non-dominated fronts over configurable objectives.

A design point *dominates* another when it is no worse on every
objective and strictly better on at least one (objectives carry their
own min/max orientation).  :func:`pareto_front` extracts the
non-dominated front from a ``dse-report/1`` document's cells, prunes
the dominated points *with provenance* — every dominated point records
which front points dominate it and by how much per objective — and
identifies the front's knee point (the best-balanced trade-off: the
point closest to the normalised ideal).  Everything is deterministic:
stable orderings, canonical JSON, a content digest over the body.

Points missing a value for any objective (a workload that scores no
deadlines swept with a deadline objective, or a failed job) cannot be
compared; they are set aside as ``unscored`` rather than silently
winning or losing.
"""

from __future__ import annotations

import math

from repro.checkpoint.snapshot import canonical_json, content_digest
from repro.dse.spec import Objective, default_objectives

#: Front document schema tag (bump on any incompatible shape change).
SCHEMA = "pareto-front/1"


def _objectives(objectives) -> list[Objective]:
    if not objectives:
        return list(default_objectives())
    return [Objective.from_dict(obj) for obj in objectives]


def _values(cell: dict, objectives) -> list | None:
    """The cell's objective vector, or None when any value is missing."""
    metrics = cell.get("metrics")
    if metrics is None:
        return None
    values = [metrics.get(obj.key) for obj in objectives]
    if any(value is None for value in values):
        return None
    return values


def dominates(a: list, b: list, objectives) -> bool:
    """True when vector ``a`` dominates vector ``b``."""
    strictly_better = False
    for obj, value_a, value_b in zip(objectives, a, b):
        if obj.better(value_b, value_a):
            return False
        if obj.better(value_a, value_b):
            strictly_better = True
    return strictly_better


def _knee_id(front: list[dict], objectives) -> str | None:
    """The front's knee point: closest to the normalised ideal.

    Each objective normalises to [0, 1] over the front with 0 = best;
    the knee minimises Euclidean distance to the all-zero ideal.  Ties
    break on job id, so the choice is deterministic.
    """
    if not front:
        return None
    spans = []
    for index, obj in enumerate(objectives):
        values = [point["values"][index] for point in front]
        low, high = min(values), max(values)
        spans.append((obj, low, high))
    best = None
    for point in front:
        distance = 0.0
        for index, (obj, low, high) in enumerate(spans):
            if high == low:
                continue
            position = (point["values"][index] - low) / (high - low)
            if obj.goal == "max":
                position = 1.0 - position
            distance += position * position
        distance = math.sqrt(distance)
        key = (distance, point["job_id"])
        if best is None or key < best:
            best = key
            best_id = point["job_id"]
    return best_id


def pareto_front(report: dict, objectives=None) -> dict:
    """Extract the ``pareto-front/1`` document from a DSE report.

    ``objectives`` overrides the report spec's objectives (used by
    ``repro dse pareto --objective`` for post-hoc re-analysis along
    different axes).
    """
    objectives = _objectives(
        objectives or report.get("spec", {}).get("objectives")
    )
    scored: list[dict] = []
    unscored: list[str] = []
    for cell in report["cells"]:
        values = _values(cell, objectives)
        if values is None:
            unscored.append(cell["job_id"])
            continue
        scored.append({
            "job_id": cell["job_id"],
            "params": dict(cell["params"]),
            "values": values,
            "metrics": {obj.key: value
                        for obj, value in zip(objectives, values)},
        })
    front: list[dict] = []
    dominated: list[dict] = []
    for point in scored:
        dominators = []
        for other in scored:
            if other is point:
                continue
            if dominates(other["values"], point["values"], objectives):
                dominators.append({
                    "job_id": other["job_id"],
                    "margins": {
                        obj.key: other["values"][i] - point["values"][i]
                        for i, obj in enumerate(objectives)
                    },
                })
        if dominators:
            dominated.append({
                "job_id": point["job_id"],
                "params": point["params"],
                "metrics": point["metrics"],
                "dominated_by": dominators,
            })
        else:
            front.append(point)
    knee = _knee_id(front, objectives)
    body = {
        "schema": SCHEMA,
        "sweep_id": report.get("sweep_id"),
        "objectives": [obj.to_dict() for obj in objectives],
        "points": len(report["cells"]),
        "front": [
            {
                "job_id": point["job_id"],
                "params": point["params"],
                "metrics": point["metrics"],
                "knee": point["job_id"] == knee,
            }
            for point in front
        ],
        "knee": knee,
        "dominated": dominated,
        "unscored": sorted(unscored),
    }
    document = dict(body)
    document["digest"] = content_digest(body)
    return document


def pareto_acceptance_check(front: dict) -> None:
    """Assert a front document is well-formed: non-empty, non-dominated.

    The brute-force check CI runs on every smoke sweep: every front
    point must be undominated by *any* front or dominated point, and
    every dominated point's recorded dominators must actually dominate
    it.  Raises :class:`AssertionError` with the offending pair.
    """
    objectives = [Objective.from_dict(obj) for obj in front["objectives"]]
    if not front["front"]:
        raise AssertionError("empty pareto front")
    everyone = list(front["front"]) + list(front["dominated"])
    vectors = {
        point["job_id"]: [point["metrics"][obj.key] for obj in objectives]
        for point in everyone
    }
    for point in front["front"]:
        for other in everyone:
            if other["job_id"] == point["job_id"]:
                continue
            if dominates(vectors[other["job_id"]],
                         vectors[point["job_id"]], objectives):
                raise AssertionError(
                    f"front point {point['job_id']} is dominated "
                    f"by {other['job_id']}"
                )
    for point in front["dominated"]:
        for dominator in point["dominated_by"]:
            if not dominates(vectors[dominator["job_id"]],
                             vectors[point["job_id"]], objectives):
                raise AssertionError(
                    f"recorded dominator {dominator['job_id']} does not "
                    f"dominate {point['job_id']}"
                )


def front_json(front: dict) -> str:
    """The front as canonical (byte-stable) JSON, newline-terminated."""
    return canonical_json(front) + "\n"


def front_csv(front: dict) -> str:
    """The front as CSV: params columns, then one column per objective.

    Rows appear in front order; the knee point carries ``knee=1``.
    Deterministic bytes — CI diffs this artifact.
    """
    param_keys = sorted({
        key for point in front["front"] for key in point["params"]
    })
    objective_keys = [obj["key"] for obj in front["objectives"]]
    header = ["job_id"] + param_keys + objective_keys + ["knee"]
    lines = [",".join(header)]
    for point in front["front"]:
        row = [point["job_id"]]
        row += [str(point["params"].get(key, "")) for key in param_keys]
        row += [repr(point["metrics"][key]) for key in objective_keys]
        row.append("1" if point["knee"] else "0")
        lines.append(",".join(row))
    return "\n".join(lines) + "\n"


def pareto_from_farm_report(payload: dict, objectives=None) -> dict:
    """Post-hoc Pareto analysis of a finished farm campaign.

    Builds report-shaped cells from a farm report's per-job rows (the
    ``repro farm report --pareto-out`` passthrough), so an existing
    campaign can be analysed without re-submitting it as a sweep.  Only
    ``done`` jobs carry result fields; others fold as failed cells.
    """
    from repro.dse.report import extract_metrics

    cells = []
    for job in payload.get("jobs", []):
        done = job.get("state") == "done"
        report = {
            "energy": {
                "elapsed_s": job.get("elapsed_s"),
                "total_instructions": job.get("total_instructions"),
                "total_energy_j": job.get("total_energy_j"),
                "mean_power_w": job.get("mean_power_w"),
            },
            "metrics": job.get("deadline_metrics", {}),
            "delivered_ok": job.get("delivered_ok"),
        }
        cells.append({
            "job_id": job["job_id"],
            "digest": job.get("digest"),
            "params": dict(job.get("params", {})),
            "survived": done,
            "metrics": extract_metrics(report) if done else None,
            "state_digest": job.get("state_digest"),
        })
    pseudo_report = {"cells": cells, "sweep_id": None, "spec": {}}
    return pareto_front(pseudo_report, objectives)


# ---------------------------------------------------------------------------
# ASCII scatter (the CLI's Pareto view)
# ---------------------------------------------------------------------------


def ascii_scatter(
    front: dict,
    x_key: str | None = None,
    y_key: str | None = None,
    width: int = 64,
    height: int = 20,
) -> str:
    """Plot the design space on two objective axes, front marked.

    ``*`` = front point, ``K`` = knee, ``.`` = dominated point.  Axes
    default to the document's first two objectives.  Deterministic
    output — CI uploads it as an artifact.
    """
    objectives = front["objectives"]
    if len(objectives) < 2 and (x_key is None or y_key is None):
        raise ValueError("need two objectives (or explicit axes) to plot")
    x_key = x_key or objectives[0]["key"]
    y_key = y_key or objectives[1]["key"]
    points = []
    for point in front["front"]:
        marker = "K" if point["knee"] else "*"
        points.append((point["metrics"], marker))
    for point in front["dominated"]:
        points.append((point["metrics"], "."))
    coords = [
        (metrics[x_key], metrics[y_key], marker)
        for metrics, marker in points
        if metrics.get(x_key) is not None and metrics.get(y_key) is not None
    ]
    title = f"pareto: {y_key} vs {x_key} ({len(front['front'])} on front)"
    if not coords:
        return title + "\n  (no plottable points)"
    xs = [c[0] for c in coords]
    ys = [c[1] for c in coords]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0
    grid = [[" "] * width for _ in range(height)]
    # Plot dominated points first so front markers win shared cells.
    for x, y, marker in sorted(coords, key=lambda c: c[2] != "."):
        col = int((x - x_low) / x_span * (width - 1))
        row = (height - 1) - int((y - y_low) / y_span * (height - 1))
        grid[row][col] = marker
    lines = [title]
    for index, row in enumerate(grid):
        label = ""
        if index == 0:
            label = f"{y_high:.4g}"
        elif index == height - 1:
            label = f"{y_low:.4g}"
        lines.append(f"{label:>10} |" + "".join(row))
    lines.append(f"{'':>10} +" + "-" * width)
    lines.append(f"{'':>10}  {x_low:<.4g}{'':^{max(1, width - 16)}}{x_high:>.4g}")
    lines.append("  * front   K knee   . dominated")
    return "\n".join(lines)


def render(front: dict) -> str:
    """A printable front summary for the CLI."""
    objective_keys = [obj["key"] for obj in front["objectives"]]
    lines = [
        f"pareto front: {len(front['front'])}/{front['points']} points "
        f"non-dominated over "
        + " x ".join(f"{o['key']}({o['goal']})" for o in front["objectives"])
        + f"  ({front['digest'][:12]})",
        f"  {'job':<14} {'knee':>4} "
        + " ".join(f"{key:>20}" for key in objective_keys),
    ]
    for point in front["front"]:
        lines.append(
            f"  {point['job_id']:<14} {'K' if point['knee'] else '':>4} "
            + " ".join(f"{point['metrics'][key]:>20.6g}"
                       for key in objective_keys)
        )
    if front["dominated"]:
        lines.append(f"  dominated: {len(front['dominated'])} point(s)")
        for point in front["dominated"][:8]:
            top = point["dominated_by"][0]
            lines.append(
                f"    {point['job_id']} dominated by {top['job_id']} "
                + " ".join(
                    f"{key}{margin:+.3g}"
                    for key, margin in top["margins"].items()
                )
            )
        if len(front["dominated"]) > 8:
            lines.append(
                f"    ... and {len(front['dominated']) - 8} more"
            )
    if front["unscored"]:
        lines.append(f"  unscored: {', '.join(front['unscored'])}")
    return "\n".join(lines)
