"""The DSE engine: expand a sweep, execute it, fold the report.

Two execution paths share one result shape:

* **farm mode** (the real path): the sweep expands into the campaign
  farm — durable :class:`~repro.farm.queue.JobQueue`, worker
  processes, exit-75 preemption/resume, content-addressed
  :class:`~repro.farm.cache.ResultCache`.  A killed sweep resumes with
  ``repro dse run`` again; a repeated sweep completes from cache.
* **inline mode** (tests, benches, examples): each design point runs
  in-process via :class:`~repro.checkpoint.resume.ResumableRun`,
  producing the *identical* canonical result document the farm worker
  writes — so the folded ``dse-report/1`` is byte-identical between
  modes, which the test suite asserts.

The sweep directory is durable state: ``sweep.json`` (the spec),
``queue/`` (job records), ``cache/`` (result documents), ``work/``
(per-job checkpoints/heartbeats).  ``repro dse report`` and ``repro
dse pareto`` need only the directory.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.farm.cache import ResultCache
from repro.farm.pool import FarmReport, WorkerPool, farm_report
from repro.farm.queue import JobQueue
from repro.farm.spec import FarmError
from repro.farm.worker import result_document
from repro.dse.report import fold_results
from repro.dse.spec import SweepSpec

#: File the sweep's spec persists under inside the sweep directory.
SPEC_FILENAME = "sweep.json"


class SweepDirs:
    """The durable layout of one sweep directory.

    ``cache_dir`` may point outside the sweep directory: a shared
    result cache lets a re-run of the same spec in a *fresh* directory
    complete every point as a cache hit instead of re-simulating — the
    property the CI smoke job asserts at >=90%.
    """

    def __init__(self, directory, cache_dir=None):
        self.root = Path(directory)
        self.spec_path = self.root / SPEC_FILENAME
        self.queue_dir = self.root / "queue"
        self.cache_dir = Path(
            cache_dir if cache_dir is not None else self.root / "cache"
        )
        self.work_dir = self.root / "work"


def save_spec(spec: SweepSpec, directory) -> Path:
    """Persist the spec into the sweep directory (atomic replace)."""
    dirs = SweepDirs(directory)
    dirs.root.mkdir(parents=True, exist_ok=True)
    temp = dirs.spec_path.with_suffix(".tmp")
    temp.write_text(
        json.dumps(spec.to_dict(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    temp.replace(dirs.spec_path)
    return dirs.spec_path


def load_spec(directory) -> SweepSpec:
    """Load the spec a sweep directory was submitted with."""
    dirs = SweepDirs(directory)
    if not dirs.spec_path.exists():
        raise FarmError(
            f"no {SPEC_FILENAME} in {dirs.root} — submit a sweep first"
        )
    return SweepSpec.from_file(dirs.spec_path)


def submit_sweep(spec: SweepSpec, directory) -> list:
    """Expand the sweep and enqueue its jobs; returns the job records.

    Idempotent: the queue dedupes on content digest, so re-submitting
    the same spec (or an overlapping one) only adds new points.
    """
    dirs = SweepDirs(directory)
    save_spec(spec, directory)
    queue = JobQueue(dirs.queue_dir)
    return queue.submit_all(spec.jobs())


def run_sweep(
    spec: SweepSpec,
    directory,
    num_workers: int = 2,
    preempt: dict | None = None,
    cache_dir=None,
    checkpoint_every: int | None = None,
) -> tuple[dict, FarmReport]:
    """Drive the sweep through the farm; returns (dse_report, farm_report).

    ``preempt`` maps job ids to fresh-event counts after which that
    job's next attempt exits 75 (the deterministic mid-run kill); the
    resumed attempt migrates to another worker and the folded report
    stays byte-identical — the property the CI smoke job checks.
    """
    dirs = SweepDirs(directory, cache_dir)
    submit_sweep(spec, directory)
    queue = JobQueue(dirs.queue_dir)
    cache = ResultCache(dirs.cache_dir)
    pool_kwargs = {}
    if checkpoint_every is not None:
        pool_kwargs["checkpoint_every"] = checkpoint_every
    pool = WorkerPool(
        queue, cache, num_workers=num_workers, work_root=dirs.work_dir,
        **pool_kwargs,
    )
    farm = pool.run(preempt=preempt)
    return collect_report(spec, directory, cache_dir=cache_dir), farm


def collect_report(
    spec: SweepSpec | None, directory, cache_dir=None
) -> dict:
    """Fold whatever results the sweep directory holds into the report.

    Usable mid-campaign (missing jobs fold as failed cells) and after
    the fact (``repro dse report`` with only the directory).
    """
    dirs = SweepDirs(directory, cache_dir)
    if spec is None:
        spec = load_spec(directory)
    cache = ResultCache(dirs.cache_dir)
    documents = {
        job.digest: cache.get(job.digest) for job in spec.jobs()
    }
    return fold_results(spec, documents)


def collect_farm_report(directory, cache_dir=None) -> FarmReport:
    """The underlying farm report for a sweep directory."""
    dirs = SweepDirs(directory, cache_dir)
    return farm_report(
        JobQueue(dirs.queue_dir), ResultCache(dirs.cache_dir), dirs.work_dir
    )


def run_inline(spec: SweepSpec, cache: ResultCache | None = None) -> dict:
    """Run every design point in-process and fold the report.

    No queue, no child processes — the fast path for benches and unit
    tests.  With a ``cache``, results are served from and stored into
    it using the same content addresses as the farm, so inline and
    farm runs interoperate on one sweep directory.
    """
    from repro.checkpoint.resume import ResumableRun

    documents: dict = {}
    for job in spec.jobs():
        document = cache.get(job.digest) if cache is not None else None
        if document is None:
            run = ResumableRun(job.workload, dict(job.params))
            run.run()
            document = result_document(job.config, run.final_report())
            if cache is not None:
                cache.put(job.digest, document)
        documents[job.digest] = document
    return fold_results(spec, documents)
