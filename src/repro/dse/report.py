"""Fold per-job results into the canonical ``dse-report/1`` document.

One *cell* per design point, in the sweep's deterministic job order.
Every cell value is a pure function of the job's canonical result
document (the same bytes whether the job was simulated fresh, resumed
after an exit-75 preemption, or served from the result cache), so the
folded report — and its digest — is byte-stable across cold runs, warm
re-runs, and kill/resume.  Scheduling metadata (attempts, worker
slots, cache hits) deliberately never enters the document: it differs
between a cold and a warm farm pass and would break byte-identity.
"""

from __future__ import annotations

from repro.checkpoint.snapshot import canonical_json, content_digest

#: Report schema tag (bump on any incompatible shape change).
SCHEMA = "dse-report/1"


def extract_metrics(report: dict) -> dict:
    """The DSE metric set of one job's canonical run report.

    Derived figures (GIPS, pJ per instruction, deadline-miss rate) are
    computed here — and only here — so every consumer (report cells,
    Pareto analysis, the farm's ``--pareto-out`` passthrough) agrees on
    their definition:

    * ``gips`` — giga-instructions per simulated second;
    * ``energy_per_instr_pj`` — the paper's E/C ratio, in pJ;
    * ``deadline_miss_rate`` — misses over scored deadlines, summed
      over every ``nos.deadline_*`` metric series (None when the
      workload scores no deadlines);
    * plus the raw totals they derive from.
    """
    energy = report.get("energy", {})
    elapsed_s = energy.get("elapsed_s")
    instructions = energy.get("total_instructions")
    total_energy_j = energy.get("total_energy_j")
    metrics = {
        "elapsed_s": elapsed_s,
        "total_instructions": instructions,
        "total_energy_j": total_energy_j,
        "mean_power_w": energy.get("mean_power_w"),
        "link_energy_j": energy.get("link_energy_j"),
        "gips": (
            instructions / elapsed_s / 1e9
            if instructions is not None and elapsed_s else None
        ),
        "energy_per_instr_pj": (
            total_energy_j / instructions * 1e12
            if total_energy_j is not None and instructions else None
        ),
    }
    counts = deadline_counts(report.get("metrics", {}))
    scored = sum(counts.values())
    metrics["deadline_miss_rate"] = (
        counts["miss"] / scored if scored else None
    )
    metrics["delivered_ok"] = report.get("delivered_ok")
    return metrics


def deadline_counts(metric_snapshot: dict) -> dict:
    """Sum hit/miss/shed over every ``nos.deadline_*`` series."""
    counts = {"hit": 0, "miss": 0, "shed": 0}
    for key, value in metric_snapshot.items():
        for verdict in counts:
            if key.startswith(f"nos.deadline_{verdict}{{"):
                counts[verdict] += int(value)
    return counts


def fold_results(spec, documents: dict) -> dict:
    """Fold a sweep's result documents into the ``dse-report/1`` body.

    ``documents`` maps job digest -> canonical result document (or
    None for a job that failed / never ran).  Cells appear in the
    sweep's job order; a missing document yields a cell with
    ``survived: false`` and no metrics, so a partially-failed sweep
    still folds deterministically.
    """
    cells = []
    for job in spec.jobs():
        document = documents.get(job.digest)
        cell = {
            "job_id": job.job_id,
            "digest": job.digest,
            "params": dict(job.params),
            "survived": document is not None,
        }
        if document is not None:
            report = document.get("report", {})
            cell["metrics"] = extract_metrics(report)
            cell["state_digest"] = report.get("state_digest")
        else:
            cell["metrics"] = None
            cell["state_digest"] = None
        cells.append(cell)
    survived = [c for c in cells if c["survived"]]
    body = {
        "schema": SCHEMA,
        "spec": spec.to_dict(),
        "sweep_id": spec.sweep_id,
        "points": len(cells),
        "cells": cells,
        "summary": {
            "survived": len(survived),
            "failed": len(cells) - len(survived),
            "total_energy_j": sum(
                c["metrics"]["total_energy_j"] or 0.0 for c in survived
            ),
            "total_elapsed_s": sum(
                c["metrics"]["elapsed_s"] or 0.0 for c in survived
            ),
        },
    }
    report = dict(body)
    report["digest"] = content_digest(body)
    return report


def report_json(report: dict) -> str:
    """The report as canonical (byte-stable) JSON, newline-terminated."""
    return canonical_json(report) + "\n"


def render(report: dict) -> str:
    """A printable per-point summary table for the CLI."""
    spec = report["spec"]
    axes = sorted(spec["sweep"])
    lines = [
        f"dse report: {report['points']} points "
        f"({report['summary']['survived']} survived)  "
        f"sweep {report['sweep_id']}  digest {report['digest'][:12]}",
        f"  {'job':<14} "
        + " ".join(f"{axis:>12}" for axis in axes)
        + f" {'GIPS':>8} {'W':>8} {'pJ/instr':>9}",
    ]
    for cell in report["cells"]:
        values = []
        for axis in axes:
            value = cell["params"].get(axis, "-")
            values.append(f"{str(value):>12}")
        metrics = cell["metrics"]
        if metrics is None:
            figures = f"{'failed':>8} {'-':>8} {'-':>9}"
        else:
            gips = metrics["gips"]
            power = metrics["mean_power_w"]
            epc = metrics["energy_per_instr_pj"]
            figures = (
                f"{gips:>8.4f} " if gips is not None else f"{'-':>8} "
            ) + (
                f"{power:>8.4f} " if power is not None else f"{'-':>8} "
            ) + (
                f"{epc:>9.2f}" if epc is not None else f"{'-':>9}"
            )
        lines.append(f"  {cell['job_id']:<14} " + " ".join(values)
                     + f" {figures}")
    return "\n".join(lines)
