"""Runtime healing: route recovery and task re-placement.

The fabric already knows how to survive a link death — software routing
tables are recomputed over the healthy graph (§V.A: "New routing
algorithms can simply be programmed in software") — but only once table
routing is active.  :class:`HealthMonitor` closes the loop at runtime:
it watches the fabric's fault listeners, switches from coordinate
routing to tables on the first mid-run link death, and forwards core
deaths to the :class:`~repro.core.nos.NanoOS` placement layer so tasks
restart on surviving cores.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.network.fabric import LinkRecord, SwallowFabric

if TYPE_CHECKING:
    from repro.core.nos import NanoOS, TaskHandle
    from repro.xs1.core import XCore


class HealthMonitor:
    """Watches fabric health and repairs routing and placement."""

    def __init__(self, fabric: SwallowFabric, nos: "NanoOS | None" = None):
        self.fabric = fabric
        self.nos = nos
        #: Link-pair records that died while this monitor was attached.
        self.link_failures: list[LinkRecord] = []
        #: Number of times routing tables were (re)computed by healing.
        self.reroutes = 0
        fabric.fault_listeners.append(self._on_link_failed)

    # -- link healing -------------------------------------------------------

    def _on_link_failed(self, record: LinkRecord) -> None:
        self.link_failures.append(record)
        if self.fabric.routing_tables is None:
            # First failure under coordinate routing: switch to software
            # tables, which route around the dead link.  Later failures
            # are recomputed by the fabric itself (fail_link does so
            # whenever tables are active).
            self.fabric.use_table_routing()
        self.reroutes += 1

    # -- core healing -------------------------------------------------------

    def on_core_failed(self, core: "XCore") -> "list[TaskHandle]":
        """Re-place a dead core's tasks (requires a NanoOS)."""
        if self.nos is None:
            core.fail()
            return []
        return self.nos.handle_core_failure(core)

    def __repr__(self) -> str:
        return (
            f"<HealthMonitor link_failures={len(self.link_failures)} "
            f"reroutes={self.reroutes}>"
        )
