"""Runtime fault injection, campaign scheduling, and self-healing.

The paper's machine lived with real faults — edge-connector link yield
(§IV-B), dead cores, marginal signal integrity — and its software had to
keep running anyway.  This package makes the simulator fault-aware end
to end:

* :class:`FaultCampaign` — a deterministic, seeded schedule of fault
  injections (permanent link/switch/core death, flaky links, transient
  bit flips) applied to a live :class:`~repro.core.platform.SwallowSystem`
  mid-run, with a byte-stable campaign report;
* :class:`HealthMonitor` — runtime healing: switches the fabric to
  software routing tables on the first mid-run link death (and keeps
  them current), and re-places tasks off dead cores through
  :meth:`~repro.core.nos.NanoOS.handle_core_failure`;
* reliable delivery lives in :mod:`repro.apps.reliable`
  (:class:`~repro.apps.reliable.ReliableChannel`), which campaigns
  integrate for retry/energy reporting.
"""

from repro.faults.campaign import (
    BitFlip,
    CampaignReport,
    CoreKill,
    FaultCampaign,
    FaultSpec,
    FlakyLink,
    LinkKill,
    NodeKill,
)
from repro.faults.healing import HealthMonitor

__all__ = [
    "BitFlip",
    "CampaignReport",
    "CoreKill",
    "FaultCampaign",
    "FaultSpec",
    "FlakyLink",
    "HealthMonitor",
    "LinkKill",
    "NodeKill",
]
