"""Deterministic fault campaigns.

A campaign is a seeded schedule of fault injections applied to a live
system mid-run.  Determinism is load-bearing, exactly as for the event
kernel: the injection schedule is fixed up front, every random draw
(flaky-link losses, bit-flip positions) comes from one
``random.Random(seed)``, and the report serialises canonically — the
same seed over the same workload produces a byte-identical report and
metrics snapshot, so fault-tolerance experiments are replayable.

Fault vocabulary (all times in campaign microseconds):

* :class:`LinkKill` — permanent death of one link pair, mid-run
  (in-flight tokens dropped, severed routes flushed);
* :class:`NodeKill` — switch death: every link touching the node dies
  and so does the node's core;
* :class:`CoreKill` — the core dies but its switch keeps forwarding
  transit traffic (the common partial-failure mode of §IV-B boards);
* :class:`FlakyLink` — a configurable token drop/corruption rate on one
  link pair, optionally ending at ``until_us``;
* :class:`BitFlip` — a single transient upset: the next payload token
  crossing the link has one random bit flipped.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Union

from repro.core.platform import SwallowSystem
from repro.faults.healing import HealthMonitor
from repro.network.routing import RoutingError
from repro.network.token import Token
from repro.sim import us

if TYPE_CHECKING:
    from repro.apps.reliable import ReliableChannel
    from repro.core.nos import NanoOS
    from repro.network.link import HalfLink
    from repro.obs.metrics import MetricsRegistry


@dataclass(frozen=True)
class LinkKill:
    """Permanently fail one link pair at ``at_us``."""

    at_us: float
    node_a: int
    node_b: int
    index: int = 0

    kind = "link_kill"


@dataclass(frozen=True)
class NodeKill:
    """Kill a whole node at ``at_us``: its links and its core."""

    at_us: float
    node_id: int

    kind = "node_kill"


@dataclass(frozen=True)
class CoreKill:
    """Kill the core on ``node_id`` at ``at_us``; its switch survives."""

    at_us: float
    node_id: int

    kind = "core_kill"


@dataclass(frozen=True)
class FlakyLink:
    """Make a link pair lossy from ``at_us`` (optionally until ``until_us``).

    ``drop_rate`` and ``corrupt_rate`` are per-payload-token
    probabilities; header and control tokens are never affected (see
    :meth:`repro.network.link.HalfLink.send`).
    """

    at_us: float
    node_a: int
    node_b: int
    drop_rate: float = 0.0
    corrupt_rate: float = 0.0
    index: int = 0
    until_us: float | None = None

    kind = "flaky_link"

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_rate + self.corrupt_rate <= 1.0:
            raise ValueError("drop_rate + corrupt_rate must lie in [0, 1]")
        if self.until_us is not None and self.until_us <= self.at_us:
            raise ValueError("until_us must come after at_us")


@dataclass(frozen=True)
class BitFlip:
    """Flip one random bit of the next payload token on a link pair."""

    at_us: float
    node_a: int
    node_b: int
    index: int = 0

    kind = "bit_flip"


FaultSpec = Union[LinkKill, NodeKill, CoreKill, FlakyLink, BitFlip]

_SPEC_KINDS: dict[str, type] = {
    spec.kind: spec for spec in (LinkKill, NodeKill, CoreKill, FlakyLink, BitFlip)
}


class CampaignReport:
    """The canonical outcome record of one campaign."""

    def __init__(self, payload: dict):
        self.payload = payload

    def to_dict(self) -> dict:
        """The report as plain data."""
        return self.payload

    def to_json(self) -> str:
        """Canonical JSON (sorted keys, compact) — byte-stable across runs."""
        return json.dumps(self.payload, sort_keys=True, separators=(",", ":"))

    def render(self) -> str:
        """A human-readable summary."""
        p = self.payload
        lines = [
            f"fault campaign (seed {p['seed']})",
            f"  injections        {len(p['events'])}",
        ]
        for event in p["events"]:
            detail = {k: v for k, v in event.items()
                      if k not in ("kind", "time_ps")}
            lines.append(
                f"    {event['time_ps'] / 1e6:10.3f} us  {event['kind']:<10}"
                f"  {detail}"
            )
        network = p["network"]
        lines += [
            f"  failed link pairs {network['failed_link_pairs']}",
            f"  tokens dropped    {network['tokens_dropped']}",
            f"  tokens corrupted  {network['tokens_corrupted']}",
            f"  routes severed    {network['routes_severed']}",
            f"  tokens discarded  {network['tokens_discarded']}",
        ]
        healing = p["healing"]
        lines += [
            f"  reroutes          {healing['reroutes']}",
            f"  failed cores      {healing['failed_cores']}",
            f"  task replacements {healing['replacements']}",
        ]
        for name, stats in sorted(p["channels"].items()):
            lines.append(
                f"  channel {name}: delivered {stats['delivered']}"
                f" retries {stats['retries']}"
                f" retry_energy {stats['retry_energy_j']:.3e} J"
            )
        energy = p["energy"]
        lines.append(
            f"  energy            cores {energy['cores']:.3e} J,"
            f" links {energy['links']:.3e} J,"
            f" support {energy['support']:.3e} J"
        )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"<CampaignReport {len(self.payload['events'])} events>"


class FaultCampaign:
    """A seeded schedule of fault injections over one system."""

    def __init__(
        self,
        system: SwallowSystem,
        faults: list[FaultSpec],
        seed: int = 0,
        nos: "NanoOS | None" = None,
        heal: bool = True,
    ):
        self.system = system
        self.fabric = system.topology.fabric
        self.faults = list(faults)
        self.seed = seed
        self.rng = random.Random(seed)
        self.nos = nos
        #: Healing is on by default: mid-run link deaths recompute
        #: routes, core deaths re-place tasks (when a NanoOS is given).
        self.monitor = HealthMonitor(self.fabric, nos=nos) if heal else None
        self.events: list[dict] = []
        self.channels: dict[str, "ReliableChannel"] = {}
        self._cores = {core.node_id: core for core in system.cores}
        self._armed = False
        #: Indices into :attr:`faults` whose injection is suppressed — the
        #: watchdog rollback ladder masks the offending fault and replays.
        #: A masked injection still *fires* as an event (so the schedule's
        #: sequence numbers, and hence the pre-fault trajectory, are
        #: byte-identical to the unmasked run) but takes no action and is
        #: recorded with ``"masked": True``.
        self.masked: set[int] = set()
        #: Spec index of each recorded event, parallel to :attr:`events`
        #: (kept out of the report payload for byte-compatibility).
        self.injected: list[int] = []

    # -- scheduling ---------------------------------------------------------

    def arm(self) -> None:
        """Schedule every injection on the simulator (call once, pre-run)."""
        if self._armed:
            raise RuntimeError("campaign already armed")
        self._armed = True
        for index, spec in enumerate(self.faults):
            self.system.sim.schedule_at(
                us(spec.at_us),
                lambda spec=spec, index=index: self._inject(spec, index),
            )

    def _record(self, spec: FaultSpec, **extra) -> None:
        event = {"time_ps": self.system.sim.now, "kind": spec.kind}
        for name in spec.__dataclass_fields__:
            if name != "at_us":
                event[name] = getattr(spec, name)
        event.update(extra)
        self.events.append(event)

    def _inject(self, spec: FaultSpec, index: int = -1) -> None:
        self.injected.append(index)
        if index in self.masked:
            self._record(spec, masked=True)
            return
        if isinstance(spec, LinkKill):
            self.fabric.fail_link(
                spec.node_a, spec.node_b, spec.index, force=True
            )
            self._record(spec)
        elif isinstance(spec, NodeKill):
            try:
                records = self.fabric.fail_node_links(spec.node_id, force=True)
            except RoutingError:
                records = []          # earlier faults already isolated it
            self._kill_core(spec.node_id)
            self._record(spec, links_failed=len(records))
        elif isinstance(spec, CoreKill):
            self._record(spec, replaced=self._kill_core(spec.node_id))
        elif isinstance(spec, FlakyLink):
            record = self.fabric.find_link(spec.node_a, spec.node_b, spec.index)
            hook = self._flaky_hook(spec.drop_rate, spec.corrupt_rate)
            halves = (record.forward, record.backward)
            for half in halves:
                half.fault_hook = hook
            if spec.until_us is not None:
                self.system.sim.schedule_at(
                    us(spec.until_us),
                    lambda: self._clear_hooks(halves, hook),
                )
            self._record(spec)
        elif isinstance(spec, BitFlip):
            record = self.fabric.find_link(spec.node_a, spec.node_b, spec.index)
            self._arm_bit_flip(record.forward)
            self._record(spec)
        else:                                         # pragma: no cover
            raise TypeError(f"unknown fault spec {spec!r}")

    def _kill_core(self, node_id: int) -> int:
        """Kill a core, healing placement when possible; replaced count."""
        core = self._cores.get(node_id)
        if core is None:
            raise RoutingError(f"no core on node {node_id}")
        if self.monitor is not None:
            return len(self.monitor.on_core_failed(core))
        core.fail()
        return 0

    # -- fault hooks --------------------------------------------------------

    def _flaky_hook(self, drop_rate: float, corrupt_rate: float):
        def hook(token: Token) -> Token | None:
            draw = self.rng.random()
            if draw < drop_rate:
                return None
            if draw < drop_rate + corrupt_rate:
                return Token(token.value ^ (1 << self.rng.randrange(8)))
            return token
        return hook

    @staticmethod
    def _clear_hooks(halves, hook) -> None:
        for half in halves:
            if half.fault_hook is hook:
                half.fault_hook = None

    def _arm_bit_flip(self, half: "HalfLink") -> None:
        def hook(token: Token) -> Token:
            if half.fault_hook is hook:
                half.fault_hook = None             # single transient upset
            return Token(token.value ^ (1 << self.rng.randrange(8)))
        half.fault_hook = hook

    # -- integration --------------------------------------------------------

    def register_channel(self, name: str, channel: "ReliableChannel") -> None:
        """Track a reliable channel's retry behaviour in the report.

        The channel is also registered with the system's energy ledger
        (:meth:`~repro.energy.accounting.EnergyAccounting.register_retry_channel`),
        so retransmission energy appears in transparency reports and in
        the ``energy.retry_j`` metric series, not just the campaign
        report.
        """
        if name in self.channels:
            raise ValueError(f"channel {name!r} already registered")
        self.channels[name] = channel
        self.system.accounting.register_retry_channel(name, channel)

    def register_metrics(self, registry: "MetricsRegistry") -> None:
        """Publish campaign series (lazily collected).

        Series: ``faults.injected``, ``faults.tokens_dropped``,
        ``faults.tokens_corrupted``, ``faults.routes_severed``,
        ``faults.tokens_discarded``, ``faults.failed_link_pairs``,
        ``faults.reroutes``, ``faults.failed_cores``,
        ``faults.replacements``, and per registered channel
        ``faults.channel_delivered{channel=...}`` /
        ``faults.channel_retries{channel=...}``.
        """
        registry.counter_fn("faults.injected", lambda: len(self.events))
        registry.counter_fn("faults.tokens_dropped", self._tokens_dropped)
        registry.counter_fn("faults.tokens_corrupted", self._tokens_corrupted)
        registry.counter_fn("faults.routes_severed", self._routes_severed)
        registry.counter_fn("faults.tokens_discarded", self._tokens_discarded)
        registry.counter_fn("faults.failed_link_pairs", self._failed_link_pairs)
        registry.counter_fn(
            "faults.reroutes",
            lambda: self.monitor.reroutes if self.monitor else 0,
        )
        registry.counter_fn(
            "faults.failed_cores",
            lambda: len(self.nos.failed_cores) if self.nos else sum(
                1 for core in self._cores.values() if core.failed
            ),
        )
        registry.counter_fn(
            "faults.replacements",
            lambda: self.nos.replacements if self.nos else 0,
        )

        def _collect_channels(emit) -> None:
            for name in sorted(self.channels):
                stats = self.channels[name].stats
                labels = {"channel": name}
                emit("faults.channel_delivered", labels, stats.delivered)
                emit("faults.channel_retries", labels, stats.retries)

        registry.register_collector(_collect_channels)

    # -- checkpointing (see repro.checkpoint) -------------------------------

    def snapshot_state(self) -> dict:
        """Canonical campaign state, including the live RNG stream.

        ``random.Random.getstate()`` is a plain tuple of ints (plus the
        gauss carry), so the stream position serialises exactly: a
        replayed campaign that made the same draws lands on the same
        state, and any divergence in drop/corrupt decisions shows up
        here as a first-differing-int.

        The :attr:`masked` set is deliberately *not* state — like the
        fault list itself it is configuration, recorded in the bundle's
        ``setup``; a pre-injection checkpoint must verify unchanged
        against a replay that masks the fault.
        """
        version, internal, gauss_next = self.rng.getstate()
        return {
            "seed": self.seed,
            "armed": self._armed,
            "injected": list(self.injected),
            "events": [dict(event) for event in self.events],
            "rng": [version, list(internal), gauss_next],
        }

    def restore_state(self, state: dict) -> None:
        """Verify the replayed campaign against checkpointed state."""
        from repro.sim.state import verify_state

        verify_state(self.snapshot_state(), state, "faults")

    # -- aggregation --------------------------------------------------------

    def _tokens_dropped(self) -> int:
        return sum(link.tokens_dropped for link in self.fabric.links)

    def _tokens_corrupted(self) -> int:
        return sum(link.tokens_corrupted for link in self.fabric.links)

    def _routes_severed(self) -> int:
        return sum(s.routes_severed for s in self.fabric.switches.values())

    def _tokens_discarded(self) -> int:
        return sum(s.tokens_discarded for s in self.fabric.switches.values())

    def _failed_link_pairs(self) -> int:
        return sum(1 for r in self.fabric.link_records if not r.healthy)

    def report(self) -> CampaignReport:
        """Build the canonical campaign report (post-run)."""
        accounting = self.system.accounting
        channels = {}
        for name in sorted(self.channels):
            channel = self.channels[name]
            stats = channel.stats.as_dict()
            stats["retry_energy_j"] = channel.retry_energy_j(accounting)
            channels[name] = stats
        payload = {
            "seed": self.seed,
            "time_ps": self.system.sim.now,
            "events": self.events,
            "network": {
                "failed_link_pairs": self._failed_link_pairs(),
                "tokens_dropped": self._tokens_dropped(),
                "tokens_corrupted": self._tokens_corrupted(),
                "routes_severed": self._routes_severed(),
                "tokens_discarded": self._tokens_discarded(),
            },
            "healing": {
                "reroutes": self.monitor.reroutes if self.monitor else 0,
                "failed_cores": (
                    len(self.nos.failed_cores) if self.nos else sum(
                        1 for core in self._cores.values() if core.failed
                    )
                ),
                "replacements": self.nos.replacements if self.nos else 0,
            },
            "channels": channels,
            "energy": accounting.breakdown_j(),
        }
        return CampaignReport(payload)

    # -- parsing ------------------------------------------------------------

    @classmethod
    def from_spec(
        cls,
        system: SwallowSystem,
        spec: dict,
        nos: "NanoOS | None" = None,
    ) -> "FaultCampaign":
        """Build a campaign from plain data, e.g. parsed JSON::

            {"seed": 7, "faults": [
                {"kind": "flaky_link", "at_us": 0, "node_a": 0, "node_b": 1,
                 "drop_rate": 0.1},
                {"kind": "link_kill", "at_us": 50, "node_a": 2, "node_b": 3}]}
        """
        faults: list[FaultSpec] = []
        for entry in spec.get("faults", []):
            entry = dict(entry)
            kind = entry.pop("kind", None)
            spec_cls = _SPEC_KINDS.get(kind)
            if spec_cls is None:
                raise ValueError(f"unknown fault kind {kind!r}")
            faults.append(spec_cls(**entry))
        return cls(
            system,
            faults,
            seed=int(spec.get("seed", 0)),
            nos=nos,
            heal=bool(spec.get("heal", True)),
        )

    def __repr__(self) -> str:
        return (
            f"<FaultCampaign seed={self.seed} faults={len(self.faults)} "
            f"injected={len(self.events)}>"
        )
