"""``repro.farm`` — a checkpoint-backed simulation campaign farm.

The farm turns the simulator into a batch service: hundreds of queued
run specs (fault campaigns, DVFS sweeps, topology ablations) fan out
across a pool of worker processes, each job checkpointed as it runs and
content-addressed when it finishes.

* :class:`JobSpec` / :class:`MatrixSpec` — one job, or a Cartesian
  sweep (topology x frequency x seeds) that expands deterministically
  into many; a job's identity is the SHA-256 of its canonical config.
* :class:`JobQueue` — durable per-job JSON records with states
  pending → running → done/failed/preempted; survives farm restarts.
* :class:`WorkerPool` — the multiprocessing coordinator: claims jobs,
  serves unchanged configs straight from the cache, spawns workers,
  honours the exit-75 preemption convention, and migrates preempted
  jobs to a different worker, which resumes byte-identically from the
  job's :class:`~repro.checkpoint.policy.CheckpointStore`.
* :class:`ResultCache` — content-addressed result documents: a cache
  hit is byte-identical to re-running the simulation.
* :class:`FarmReport` / :func:`farm_progress` — the end-of-campaign
  aggregate and the live heartbeat-fed progress view.

See ``docs/farm.md`` for the job lifecycle, cache keying, and the
preemption/migration walk-through.
"""

from repro.farm.cache import ResultCache
from repro.farm.pool import (
    FarmReport,
    WorkerPool,
    farm_heatmap,
    farm_progress,
    farm_report,
    render_progress,
)
from repro.farm.queue import JobQueue, JobRecord, STATES
from repro.farm.spec import FarmError, JobSpec, MatrixSpec
from repro.farm.worker import EXIT_PREEMPTED, execute_job

__all__ = [
    "EXIT_PREEMPTED",
    "FarmError",
    "FarmReport",
    "JobQueue",
    "JobRecord",
    "JobSpec",
    "MatrixSpec",
    "ResultCache",
    "STATES",
    "WorkerPool",
    "execute_job",
    "farm_heatmap",
    "farm_progress",
    "farm_report",
    "render_progress",
]
