"""A durable, content-addressed job queue.

Every job is one JSON file in ``<dir>/jobs/`` — atomic-replace writes,
so a record is always either the old state or the new one, never a
torn write.  The lifecycle::

    pending --> running --> done
                   |------> failed
                   '------> preempted --> running --> ...

``preempted`` jobs (a worker exited with the resumable exit code 75,
or the farm process itself died mid-job) are claimable again: the next
worker resumes from the job's checkpoint store and — because resume is
a byte-identical replay — finishes exactly as an uninterrupted run
would.  Durability is the point: a farm can be killed and restarted and
:meth:`JobQueue.recover` turns orphaned ``running`` records back into
claimable ``preempted`` ones.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.checkpoint.snapshot import canonical_json
from repro.farm.spec import FarmError, JobSpec

#: Legal job states.
STATES = ("pending", "running", "done", "failed", "preempted")
#: States a worker may claim a job from.
CLAIMABLE = ("pending", "preempted")
#: States that end a job's lifecycle.
TERMINAL = ("done", "failed")


class JobRecord:
    """One job's durable state: its spec plus lifecycle bookkeeping."""

    def __init__(self, spec: JobSpec, index: int, state: str = "pending",
                 attempts: int = 0, workers: list[int] | None = None,
                 cache_hit: bool = False, error: str | None = None):
        self.spec = spec
        #: Submission order — the deterministic claim order.
        self.index = index
        self.state = state
        #: Completed or interrupted execution attempts.
        self.attempts = attempts
        #: Worker slot of each attempt, in order.
        self.workers = list(workers or [])
        #: True when the job completed from the result cache.
        self.cache_hit = cache_hit
        self.error = error

    @property
    def job_id(self) -> str:
        return self.spec.job_id

    @property
    def digest(self) -> str:
        return self.spec.digest

    def to_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "digest": self.digest,
            "index": self.index,
            "spec": self.spec.to_dict(),
            "state": self.state,
            "attempts": self.attempts,
            "workers": list(self.workers),
            "cache_hit": self.cache_hit,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "JobRecord":
        return cls(
            spec=JobSpec.from_dict(data["spec"]),
            index=int(data["index"]),
            state=data["state"],
            attempts=int(data.get("attempts", 0)),
            workers=[int(w) for w in data.get("workers", [])],
            cache_hit=bool(data.get("cache_hit", False)),
            error=data.get("error"),
        )

    def __repr__(self) -> str:
        return f"<JobRecord {self.job_id} {self.state} attempts={self.attempts}>"


class JobQueue:
    """The on-disk queue: one atomic JSON record per job."""

    def __init__(self, directory):
        self.directory = Path(directory)
        self.jobs_dir = self.directory / "jobs"
        self.jobs_dir.mkdir(parents=True, exist_ok=True)

    # -- storage ------------------------------------------------------------

    def _path(self, job_id: str) -> Path:
        return self.jobs_dir / f"{job_id}.json"

    def _save(self, record: JobRecord) -> None:
        path = self._path(record.job_id)
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(canonical_json(record.to_dict()), encoding="utf-8")
        os.replace(tmp, path)

    def get(self, job_id: str) -> JobRecord:
        path = self._path(job_id)
        if not path.exists():
            raise FarmError(f"unknown job {job_id!r} in {self.jobs_dir}")
        return JobRecord.from_dict(json.loads(path.read_text(encoding="utf-8")))

    def jobs(self) -> list[JobRecord]:
        """Every record, in submission (claim) order."""
        records = [
            JobRecord.from_dict(json.loads(path.read_text(encoding="utf-8")))
            for path in sorted(self.jobs_dir.glob("*.json"))
        ]
        return sorted(records, key=lambda r: (r.index, r.job_id))

    # -- lifecycle ----------------------------------------------------------

    def submit(self, spec: JobSpec) -> JobRecord:
        """Enqueue ``spec``; content-address dedupe returns the existing
        record for an already-submitted configuration."""
        path = self._path(spec.job_id)
        if path.exists():
            return self.get(spec.job_id)
        record = JobRecord(spec, index=len(list(self.jobs_dir.glob("*.json"))))
        self._save(record)
        return record

    def submit_all(self, specs) -> list[JobRecord]:
        """Enqueue many specs; returns their records in order."""
        return [self.submit(spec) for spec in specs]

    def claim(self, worker: int, job_id: str | None = None) -> JobRecord | None:
        """Claim a claimable job for worker slot ``worker``.

        Without ``job_id``, the next claimable job is taken: preempted
        jobs sort before never-started ones (finish what was
        interrupted first), ties break on submission order.  With
        ``job_id``, that specific job is claimed (it must be
        claimable).  Returns ``None`` when nothing is claimable.
        """
        if job_id is not None:
            record = self.get(job_id)
            if record.state not in CLAIMABLE:
                raise FarmError(
                    f"job {job_id!r} is {record.state}, not claimable"
                )
        else:
            claimable = [r for r in self.jobs() if r.state in CLAIMABLE]
            if not claimable:
                return None
            claimable.sort(key=lambda r: (r.state != "preempted", r.index))
            record = claimable[0]
        record.state = "running"
        record.attempts += 1
        record.workers.append(worker)
        self._save(record)
        return record

    def _transition(self, job_id: str, state: str, *,
                    error: str | None = None,
                    cache_hit: bool | None = None) -> JobRecord:
        record = self.get(job_id)
        record.state = state
        record.error = error
        if cache_hit is not None:
            record.cache_hit = cache_hit
        self._save(record)
        return record

    def complete(self, job_id: str, cache_hit: bool = False) -> JobRecord:
        """Mark a job done (``cache_hit`` when served from the cache)."""
        return self._transition(job_id, "done", cache_hit=cache_hit)

    def fail(self, job_id: str, error: str) -> JobRecord:
        return self._transition(job_id, "failed", error=error)

    def preempt(self, job_id: str) -> JobRecord:
        """Mark a running job preempted — claimable again, resumable
        from its checkpoint store."""
        return self._transition(job_id, "preempted")

    def recover(self) -> list[JobRecord]:
        """Flip orphaned ``running`` jobs (dead farm/worker) to
        ``preempted`` so a restarted farm can resume them."""
        recovered = []
        for record in self.jobs():
            if record.state == "running":
                recovered.append(self.preempt(record.job_id))
        return recovered

    # -- queries ------------------------------------------------------------

    def counts(self) -> dict[str, int]:
        """Jobs per state (every state present, zero included)."""
        counts = {state: 0 for state in STATES}
        for record in self.jobs():
            counts[record.state] += 1
        return counts

    def done(self) -> bool:
        """True when every job reached a terminal state."""
        jobs = self.jobs()
        return bool(jobs) and all(r.state in TERMINAL for r in jobs)

    def __len__(self) -> int:
        return len(list(self.jobs_dir.glob("*.json")))

    def __repr__(self) -> str:
        counts = self.counts()
        summary = " ".join(f"{s}={n}" for s, n in counts.items() if n)
        return f"<JobQueue {self.directory} {summary or 'empty'}>"
