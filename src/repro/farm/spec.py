"""Job specifications and matrix sweeps — the farm's unit of work.

A :class:`JobSpec` is one simulation to run: a registered workload name
(see :mod:`repro.checkpoint.workloads`) plus a JSON-able params dict.
Its identity is *content-addressed*: :attr:`JobSpec.digest` is the
SHA-256 of the canonical JSON of ``{"workload": ..., "params": ...}``,
so two specs with the same configuration are the same job — the key
the :class:`~repro.farm.cache.ResultCache` caches under and the
:class:`~repro.farm.queue.JobQueue` dedupes on.  Because every
registered workload is a pure function of its params, the digest names
the *result* as much as the job.

A :class:`MatrixSpec` is a sweep: a base params dict plus per-parameter
value lists whose Cartesian product expands — in deterministic order —
to the job list of a campaign (topology x frequency x seeds is the
canonical DSE shape).
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field

from repro.checkpoint.snapshot import canonical_json, content_digest


class FarmError(RuntimeError):
    """Invalid spec, queue state, or an impossible farm operation."""


@dataclass(frozen=True)
class JobSpec:
    """One simulation job: a rebuildable workload plus its params."""

    workload: str
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.workload:
            raise FarmError("job needs a workload name")
        try:
            canonical_json(self.params)
        except TypeError as error:
            raise FarmError(
                f"job params must be JSON-able: {error}"
            ) from error

    @property
    def config(self) -> dict:
        """The canonical configuration object the digest is taken over."""
        return {"workload": self.workload, "params": dict(self.params)}

    @property
    def digest(self) -> str:
        """SHA-256 of the canonical config — the content address."""
        return content_digest(self.config)

    @property
    def job_id(self) -> str:
        """Short content-addressed id (first 12 digest hex chars)."""
        return self.digest[:12]

    def to_dict(self) -> dict:
        return self.config

    @classmethod
    def from_dict(cls, data: dict) -> "JobSpec":
        return cls(
            workload=data["workload"], params=dict(data.get("params", {}))
        )

    def __repr__(self) -> str:
        return f"<JobSpec {self.workload!r} {self.job_id}>"


@dataclass(frozen=True)
class MatrixSpec:
    """A Cartesian sweep over workload parameters.

    JSON form (``repro farm submit --matrix``)::

        {
          "workload": "faults_stream",
          "base":  {"words": 16, "drop_rate": 0.05},
          "sweep": {
            "slices_x": [1, 2],
            "freq_mhz": [500, 250],
            "seed":     [0, 1, 2]
          }
        }

    ``base`` holds the parameters every job shares; each ``sweep`` key
    maps to the list of values that axis takes.  :meth:`jobs` expands
    the product with axes iterated in sorted key order and values in
    listed order, so the same matrix always yields the same job list in
    the same order — submission order is part of the campaign's
    deterministic identity.

    An axis value may also be a *dict*, in which case it is a **bundle**:
    its keys merge into the job's params instead of binding the axis
    name.  Bundled axes sweep co-varying parameters as one dimension —
    e.g. a ``campaign`` axis of ``[{"seed": 1, "kills": 1},
    {"seed": 2, "kills": 2}]`` varies seed and kill count together
    rather than as a 2x2 product.
    """

    workload: str
    base: dict = field(default_factory=dict)
    sweep: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.workload:
            raise FarmError("matrix needs a workload name")
        for axis, values in self.sweep.items():
            if not isinstance(values, (list, tuple)) or not values:
                raise FarmError(
                    f"sweep axis {axis!r} needs a non-empty value list"
                )

    @property
    def num_jobs(self) -> int:
        """Size of the expanded matrix."""
        total = 1
        for values in self.sweep.values():
            total *= len(values)
        return total

    def jobs(self) -> list[JobSpec]:
        """The expanded job list, in deterministic order.

        Later axes (sorted last) vary fastest; duplicate configurations
        (e.g. a sweep axis repeated in ``base``) collapse to one job.
        """
        axes = sorted(self.sweep)
        specs: list[JobSpec] = []
        seen: set[str] = set()
        for combo in itertools.product(*(self.sweep[axis] for axis in axes)):
            params = dict(self.base)
            for axis, value in zip(axes, combo):
                if isinstance(value, dict):
                    params.update(value)
                else:
                    params[axis] = value
            spec = JobSpec(self.workload, params)
            if spec.digest not in seen:
                seen.add(spec.digest)
                specs.append(spec)
        return specs

    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "base": dict(self.base),
            "sweep": {k: list(v) for k, v in self.sweep.items()},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MatrixSpec":
        if "workload" not in data:
            raise FarmError("matrix spec needs a 'workload' field")
        return cls(
            workload=data["workload"],
            base=dict(data.get("base", {})),
            sweep=dict(data.get("sweep", {})),
        )

    @classmethod
    def from_file(cls, path) -> "MatrixSpec":
        with open(path, encoding="utf-8") as handle:
            try:
                data = json.load(handle)
            except json.JSONDecodeError as error:
                raise FarmError(f"unparseable matrix spec: {error}") from error
        return cls.from_dict(data)

    def __repr__(self) -> str:
        return (
            f"<MatrixSpec {self.workload!r} {len(self.sweep)} axes "
            f"{self.num_jobs} jobs>"
        )
