"""The worker pool: fan jobs out across processes; aggregate the farm.

One coordinator (this process) owns the :class:`JobQueue` and the
:class:`ResultCache`; N worker *slots* each run at most one child
process at a time (``multiprocessing``, fork where available).  The
loop is claim → maybe-serve-from-cache → spawn → reap:

* a claimable job whose config digest is already cached completes
  immediately as a **cache hit** — no process, no simulation;
* exit 0 stores the worker's deterministic ``result.json`` in the
  cache and marks the job done;
* exit 75 (:data:`~repro.farm.worker.EXIT_PREEMPTED`) marks it
  preempted — claimable again, and the pool deliberately prefers a
  *different* slot for the retry, so preemption exercises migration:
  the next worker resumes from the job's checkpoint store and finishes
  byte-identically;
* any other exit marks it failed (the attempt's traceback is in the
  job's work directory).

:func:`farm_progress` folds every job's newest heartbeat line into a
live campaign view; :func:`farm_report` builds the final
:class:`FarmReport` from the queue, the cache, and the per-job result
documents.  The report's per-job payloads are deterministic (they come
from canonical result documents); scheduling metadata (attempts,
worker slots) reflects this farm's actual history.
"""

from __future__ import annotations

import json
import multiprocessing
import time
from pathlib import Path

from repro.checkpoint.snapshot import canonical_json
from repro.farm.cache import ResultCache
from repro.farm.queue import CLAIMABLE, JobQueue, JobRecord
from repro.farm.spec import FarmError
from repro.farm import worker as worker_mod
from repro.farm.worker import (
    DEFAULT_CHECKPOINT_EVERY,
    DEFAULT_HEARTBEAT_EVERY,
    EXIT_PREEMPTED,
    worker_main,
)


def _mp_context():
    """Fork when the platform has it (fast), spawn otherwise."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


class FarmReport:
    """The canonical end-of-campaign document."""

    def __init__(self, payload: dict):
        self.payload = payload

    def to_dict(self) -> dict:
        return self.payload

    def to_json(self) -> str:
        """Canonical JSON of the report."""
        return canonical_json(self.payload)

    def render(self) -> str:
        p = self.payload
        counts = p["counts"]
        lines = [
            f"farm report: {p['total_jobs']} jobs  "
            + "  ".join(f"{s}={n}" for s, n in sorted(counts.items()) if n),
            f"  cache             {p['cache']['hits']} hits / "
            f"{p['cache']['misses']} misses "
            f"({p['cache']['hit_rate']:.0%} hit rate)",
            f"  attempts          {p['attempts']} "
            f"({p['preemptions']} preemption(s))",
            f"  simulated energy  {p['total_energy_j']:.6f} J",
            f"  simulated time    {p['total_elapsed_s'] * 1e6:.3f} us",
        ]
        lines.append(f"  {'job':<14} {'state':<10} {'att':>3} {'hit':>3} "
                     f"{'energy (J)':>12} {'sim (us)':>10}")
        for job in p["jobs"]:
            energy = job.get("total_energy_j")
            elapsed = job.get("elapsed_s")
            energy_text = f"{energy:.6f}" if energy is not None else "-"
            elapsed_text = f"{elapsed * 1e6:.3f}" if elapsed is not None else "-"
            lines.append(
                f"  {job['job_id']:<14} {job['state']:<10} "
                f"{job['attempts']:>3} {'y' if job['cache_hit'] else '-':>3} "
                f"{energy_text:>12} {elapsed_text:>10}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        p = self.payload
        return (
            f"<FarmReport jobs={p['total_jobs']} "
            f"hits={p['cache']['hits']}>"
        )


class WorkerPool:
    """Drive a queue's jobs to terminal states across worker processes."""

    def __init__(
        self,
        queue: JobQueue,
        cache: ResultCache,
        num_workers: int = 2,
        *,
        work_root=None,
        checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
        retain: int = 3,
        heartbeat_every: int | None = DEFAULT_HEARTBEAT_EVERY,
        poll_s: float = 0.01,
    ):
        if num_workers < 1:
            raise FarmError("need at least one worker")
        self.queue = queue
        self.cache = cache
        self.num_workers = num_workers
        self.work_root = Path(
            work_root if work_root is not None else queue.directory / "work"
        )
        self.checkpoint_every = checkpoint_every
        self.retain = retain
        self.heartbeat_every = heartbeat_every
        self.poll_s = poll_s
        self._context = _mp_context()
        #: Wall seconds of the last :meth:`run` (edge-only, never part
        #: of any deterministic document).
        self.wall_s = 0.0
        #: Events log: (job_id, event) tuples in coordinator order.
        self.events: list[tuple[str, str]] = []

    def work_dir(self, job_id: str) -> Path:
        """A job's work directory (checkpoints, heartbeats, result)."""
        return self.work_root / job_id

    # -- the coordinator loop -----------------------------------------------

    def _claimable(self) -> list[JobRecord]:
        claimable = [r for r in self.queue.jobs() if r.state in CLAIMABLE]
        claimable.sort(key=lambda r: (r.state != "preempted", r.index))
        return claimable

    def _spawn(self, record: JobRecord, slot: int,
               preempt_after: int | None):
        options = {
            "attempt": record.attempts,
            "checkpoint_every": self.checkpoint_every,
            "retain": self.retain,
            "heartbeat_every": self.heartbeat_every,
            "preempt_after_events": preempt_after,
        }
        process = self._context.Process(
            target=worker_main,
            args=(record.spec.config, str(self.work_dir(record.job_id)),
                  options),
            name=f"farm-worker-{slot}-{record.job_id}",
        )
        process.start()
        return process

    def _reap(self, record: JobRecord, exitcode: int) -> None:
        job_id = record.job_id
        if exitcode == 0:
            document = worker_mod.load_result(self.work_dir(job_id))
            self.cache.put(record.digest, document)
            self.queue.complete(job_id)
            self.events.append((job_id, "done"))
        elif exitcode == EXIT_PREEMPTED:
            self.queue.preempt(job_id)
            self.events.append((job_id, "preempted"))
        else:
            self.queue.fail(job_id, f"worker exited with code {exitcode}")
            self.events.append((job_id, f"failed({exitcode})"))

    def _fill(self, slots: list, preempt: dict[str, int]) -> None:
        """Assign claimable jobs to idle slots.

        A cached config completes on the spot without occupying a slot.
        A preempted job is only assigned to a slot it has *not* run on:
        with more than one worker it waits for a different slot to free
        instead of resuming where it was killed — preemption always
        migrates, which is what makes the byte-identical-resume
        guarantee worth testing.  (A single-worker pool resumes in
        place; there is nowhere to migrate to.)
        """
        while True:
            free = [i for i, slot in enumerate(slots) if slot is None]
            if not free:
                return
            assigned = False
            for record in self._claimable():
                if self.cache.get(record.digest) is not None:
                    self.queue.complete(record.job_id, cache_hit=True)
                    self.events.append((record.job_id, "cache_hit"))
                    assigned = True
                    break
                last = record.workers[-1] if record.workers else None
                preferred = [slot for slot in free if slot != last]
                if not preferred:
                    if self.num_workers > 1:
                        continue  # wait for a different slot — migrate
                    preferred = free
                slot = preferred[0]
                record = self.queue.claim(slot, job_id=record.job_id)
                slots[slot] = (
                    record,
                    self._spawn(record, slot,
                                preempt.pop(record.job_id, None)),
                )
                assigned = True
                break
            if not assigned:
                return

    def run(self, preempt: dict[str, int] | None = None) -> FarmReport:
        """Drive every queued job to a terminal state; return the report.

        ``preempt`` maps job ids to a fresh-event count after which that
        job's *next* attempt exits with code 75 — the deterministic
        stand-in for killing a worker mid-run.  Each entry fires once;
        the resumed attempt runs unhindered (on a different slot when
        more than one worker exists).
        """
        preempt = dict(preempt or {})
        self.queue.recover()
        self.work_root.mkdir(parents=True, exist_ok=True)
        slots: list[tuple[JobRecord, object] | None] = (
            [None] * self.num_workers
        )
        started = time.perf_counter()
        try:
            while True:
                # Reap finished workers.
                for index, slot in enumerate(slots):
                    if slot is None:
                        continue
                    record, process = slot
                    if process.exitcode is None:
                        continue
                    process.join()
                    self._reap(record, process.exitcode)
                    slots[index] = None
                # Fill idle slots (cache hits complete without a slot).
                self._fill(slots, preempt)
                if all(slot is None for slot in slots):
                    if not self._claimable():
                        break
                    continue
                time.sleep(self.poll_s)
        finally:
            for slot in slots:
                if slot is not None:
                    slot[1].terminate()
                    slot[1].join()
            self.wall_s = time.perf_counter() - started
        return farm_report(self.queue, self.cache, self.work_root)

    def __repr__(self) -> str:
        return (
            f"<WorkerPool workers={self.num_workers} "
            f"queue={self.queue.directory}>"
        )


# ---------------------------------------------------------------------------
# Aggregation: live progress and the final report
# ---------------------------------------------------------------------------


def _job_summary(record: JobRecord, cache: ResultCache) -> dict:
    """One job's report row (result fields only when it completed)."""
    row = {
        "job_id": record.job_id,
        "digest": record.digest,
        "index": record.index,
        "workload": record.spec.workload,
        "params": dict(record.spec.params),
        "state": record.state,
        "attempts": record.attempts,
        "workers": list(record.workers),
        "cache_hit": record.cache_hit,
        "error": record.error,
    }
    if record.state == "done":
        document = cache.get(record.digest)
        if document is not None:
            report = document.get("report", {})
            energy = report.get("energy", {})
            row["total_energy_j"] = energy.get("total_energy_j")
            row["elapsed_s"] = energy.get("elapsed_s")
            row["total_instructions"] = energy.get("total_instructions")
            row["mean_power_w"] = energy.get("mean_power_w")
            row["delivered_ok"] = report.get("delivered_ok")
            row["state_digest"] = report.get("state_digest")
            # Deadline series only (what post-hoc Pareto analysis of a
            # campaign needs); the full snapshot stays in the cache.
            row["deadline_metrics"] = {
                key: value
                for key, value in report.get("metrics", {}).items()
                if key.startswith("nos.deadline_")
            }
    return row


def farm_report(queue: JobQueue, cache: ResultCache, work_root) -> FarmReport:
    """Aggregate the campaign into a :class:`FarmReport`."""
    records = queue.jobs()
    jobs = [_job_summary(record, cache) for record in records]
    hits = sum(1 for job in jobs if job["cache_hit"])
    done = sum(1 for job in jobs if job["state"] == "done")
    attempts = sum(job["attempts"] for job in jobs)
    preemptions = sum(
        max(0, job["attempts"] - 1) for job in jobs
        if job["state"] == "done" and not job["cache_hit"]
    )
    return FarmReport({
        "total_jobs": len(jobs),
        "counts": queue.counts(),
        "cache": {
            "hits": hits,
            "misses": done - hits,
            "hit_rate": hits / done if done else 0.0,
        },
        "attempts": attempts,
        "preemptions": preemptions,
        "total_energy_j": sum(
            job.get("total_energy_j") or 0.0 for job in jobs
        ),
        "total_elapsed_s": sum(job.get("elapsed_s") or 0.0 for job in jobs),
        "jobs": jobs,
    })


def farm_heatmap(queue: JobQueue, cache: ResultCache) -> dict | None:
    """Merge the campaign's netscope heat maps into one fleet document.

    Collects the ``report["netscope"]`` section of every completed
    job's cached result and merges per grid shape (DSE sweeps mix
    topologies; see :func:`repro.obs.netscope.fleet_heatmap`).  Returns
    None when no job carried a heat map — netscope is opt-in via the
    ``"netscope": true`` workload param.
    """
    from repro.obs.netscope import fleet_heatmap

    docs = []
    for record in queue.jobs():
        if record.state != "done":
            continue
        document = cache.get(record.digest)
        if document is None:
            continue
        heatmap = document.get("report", {}).get("netscope")
        if heatmap is not None:
            docs.append(heatmap)
    if not docs:
        return None
    return fleet_heatmap(docs)


def farm_progress(queue: JobQueue, work_root) -> dict:
    """The live campaign view: queue counts + newest heartbeat per job.

    Heartbeat streams are written by workers with atomic line flushes;
    a torn final line (a worker mid-write) is skipped, so progress can
    be polled while the farm runs.
    """
    work_root = Path(work_root)
    rows = []
    for record in queue.jobs():
        beat = worker_mod.latest_heartbeat(work_root / record.job_id)
        row = {
            "job_id": record.job_id,
            "state": record.state,
            "attempts": record.attempts,
            "cache_hit": record.cache_hit,
        }
        if beat is not None:
            row["events"] = beat.get("events")
            row["events_replayed"] = beat.get("events_replayed")
            row["sim_time_ps"] = beat.get("sim_time_ps")
            row["checkpoints"] = beat.get("checkpoints")
            row["final"] = beat.get("final")
        rows.append(row)
    return {"counts": queue.counts(), "jobs": rows}


def render_progress(progress: dict) -> str:
    """A printable live view for ``repro farm status``."""
    counts = progress["counts"]
    total = sum(counts.values())
    terminal = counts["done"] + counts["failed"]
    lines = [
        f"farm status: {terminal}/{total} jobs finished  "
        + "  ".join(f"{s}={n}" for s, n in sorted(counts.items()) if n),
        f"  {'job':<14} {'state':<10} {'att':>3} {'events':>9} "
        f"{'replayed':>9} {'ckpts':>6}",
    ]
    for job in progress["jobs"]:
        events = job.get("events")
        lines.append(
            f"  {job['job_id']:<14} "
            f"{job['state'] + ('*' if job['cache_hit'] else ''):<10} "
            f"{job['attempts']:>3} "
            f"{events if events is not None else '-':>9} "
            f"{job.get('events_replayed', '-') or 0:>9} "
            f"{job.get('checkpoints', '-') or 0:>6}"
        )
    lines.append("  (* = served from the result cache)")
    return "\n".join(lines)
