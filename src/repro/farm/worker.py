"""The farm worker: run one job in a child process, checkpointed.

A worker is intentionally dumb: it receives a job's canonical config
plus a per-job work directory and drives a
:class:`~repro.checkpoint.resume.ResumableRun` to completion, writing

* ``checkpoints/`` — the job's bounded :class:`CheckpointStore`
  (its durable state; any later worker can resume from it);
* ``heartbeat-a<attempt>.jsonl`` — a :class:`RunHeartbeat` stream the
  farm aggregates into the live campaign view;
* ``result.json`` — the *deterministic* result document (canonical
  JSON of the config plus the workload's final report), written only
  on completion — this is the exact document the
  :class:`~repro.farm.cache.ResultCache` stores, so a cache hit is
  byte-identical to a fresh simulation;
* ``outcome-a<attempt>.json`` — per-attempt metadata (recovery report,
  fresh/replayed event split) that is *not* part of the deterministic
  result: two attempts that preempt differently record different
  outcomes but identical results.

Exit codes follow the repo's convention: 0 = done, 75 = preempted
(:data:`EXIT_PREEMPTED`, same EX_TEMPFAIL code ``--kill-after-events``
uses — the job is resumable, not failed), anything else = failed.

The migration story is just resume: if ``checkpoints/`` already holds
bundles, the worker rebuilds from the newest one, replays and verifies
it, and continues — regardless of which process captured it.  State
moves between workers as bundles on disk, never as live objects.
"""

from __future__ import annotations

import json
import os
import sys
import traceback
from pathlib import Path

from repro.checkpoint.policy import CheckpointPolicy, CheckpointStore
from repro.checkpoint.resume import ResumableRun
from repro.checkpoint.snapshot import canonical_json
from repro.obs.perf import RunHeartbeat

#: Exit code of a preempted (resumable) worker — EX_TEMPFAIL, matching
#: the CLI's ``--kill-after-events`` convention.
EXIT_PREEMPTED = 75
#: Exit code of a failed (non-resumable) job attempt.
EXIT_FAILED = 1

#: Default checkpoint cadence (kernel events) for farm jobs.
DEFAULT_CHECKPOINT_EVERY = 2_000
#: Default heartbeat cadence (kernel events) for farm jobs.
DEFAULT_HEARTBEAT_EVERY = 2_000


def result_document(config: dict, report: dict) -> dict:
    """The deterministic result document for a completed job."""
    return {"config": config, "report": report}


def execute_job(
    config: dict,
    work_dir,
    *,
    attempt: int = 1,
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
    retain: int = 3,
    heartbeat_every: int | None = DEFAULT_HEARTBEAT_EVERY,
    preempt_after_events: int | None = None,
) -> int:
    """Run one job to completion (or preemption); returns the exit code.

    ``config`` is the job's canonical ``{"workload", "params"}``;
    ``preempt_after_events`` simulates a mid-run kill after that many
    fresh events (the deterministic stand-in for an external SIGKILL,
    used by the preemption/migration tests and the CI smoke job).
    """
    work_dir = Path(work_dir)
    work_dir.mkdir(parents=True, exist_ok=True)
    store = CheckpointStore(work_dir / "checkpoints", retain=retain)
    policy = CheckpointPolicy(every_events=checkpoint_every, retain=retain)
    try:
        if len(store):
            run = ResumableRun.resume(store.latest(), policy=policy,
                                      store=store)
        else:
            run = ResumableRun(config["workload"], config.get("params", {}),
                               policy=policy, store=store)
        heartbeat = None
        if heartbeat_every is not None:
            heartbeat = RunHeartbeat(
                heartbeat_every,
                out=work_dir / f"heartbeat-a{attempt}.jsonl",
                metrics=run.context.system.metrics,
            )
        recovery = run.run(kill_after_events=preempt_after_events,
                           heartbeat=heartbeat)
    except Exception:
        (work_dir / f"error-a{attempt}.txt").write_text(
            traceback.format_exc(), encoding="utf-8"
        )
        return EXIT_FAILED
    outcome = {
        "attempt": attempt,
        "outcome": recovery.to_dict()["outcome"],
        "events_fresh": run.events_fresh,
        "events_replayed": run.events_replayed,
        "checkpoints": run.captures,
        "recovery": recovery.to_dict(),
    }
    (work_dir / f"outcome-a{attempt}.json").write_text(
        json.dumps(outcome, sort_keys=True), encoding="utf-8"
    )
    if run.killed:
        return EXIT_PREEMPTED
    document = result_document(config, run.final_report())
    result_path = work_dir / "result.json"
    tmp = result_path.with_suffix(".json.tmp")
    tmp.write_text(canonical_json(document), encoding="utf-8")
    os.replace(tmp, result_path)
    return 0


def worker_main(config: dict, work_dir: str, options: dict) -> None:
    """``multiprocessing.Process`` target: run one job, exit with its code."""
    sys.exit(execute_job(config, work_dir, **options))


def load_result(work_dir) -> dict:
    """Read a completed job's deterministic result document."""
    return json.loads(
        (Path(work_dir) / "result.json").read_text(encoding="utf-8")
    )


def load_outcomes(work_dir) -> list[dict]:
    """Every attempt's outcome metadata, in attempt order."""
    outcomes = [
        json.loads(path.read_text(encoding="utf-8"))
        for path in sorted(Path(work_dir).glob("outcome-a*.json"))
    ]
    return sorted(outcomes, key=lambda o: o["attempt"])


def latest_heartbeat(work_dir) -> dict | None:
    """The most recent heartbeat line of a job's newest attempt stream."""
    paths = sorted(Path(work_dir).glob("heartbeat-a*.jsonl"))
    for path in reversed(paths):
        try:
            lines = path.read_text(encoding="utf-8").splitlines()
        except OSError:
            continue
        for line in reversed(lines):
            line = line.strip()
            if line:
                try:
                    return json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn tail of a live stream
    return None
