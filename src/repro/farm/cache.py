"""Content-addressed result cache.

A completed job's result document is stored under the *full* SHA-256
digest of its canonical configuration (:attr:`JobSpec.digest`).
Because every registered workload is a deterministic function of its
params, the digest names the result: a hit returns bytes identical to
what re-simulating would produce — the property
``tests/farm/test_determinism.py`` pins down.  Repeated sweeps
therefore cost one directory read per unchanged job instead of a
simulation.

Entries are canonical JSON written with atomic replace; a partially
written entry can never be observed, and :meth:`ResultCache.get`
validates that the stored config digest matches the file name before
trusting the hit (a corrupted or hand-edited entry is a miss, not a
wrong answer).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.checkpoint.snapshot import canonical_json, content_digest


class ResultCache:
    """A directory of ``<digest>.json`` result documents."""

    def __init__(self, directory):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        #: Hits/misses observed through this handle (process-local).
        self.hits = 0
        self.misses = 0

    def _path(self, digest: str) -> Path:
        return self.directory / f"{digest}.json"

    def get(self, digest: str) -> dict | None:
        """The cached result document, or ``None`` on a miss.

        A stored document whose recorded config no longer hashes to
        ``digest`` (corruption, truncation, manual edits) is treated as
        a miss — the job re-simulates and the entry is rewritten.
        """
        path = self._path(digest)
        if not path.exists():
            self.misses += 1
            return None
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            return None
        if content_digest(document.get("config", {})) != digest:
            self.misses += 1
            return None
        self.hits += 1
        return document

    def put(self, digest: str, document: dict) -> Path:
        """Store ``document`` under ``digest`` (atomic replace).

        The document must carry the job's ``config`` so hits are
        self-validating; storing under a digest its config does not
        hash to is an error, not a silent poisoning.
        """
        if content_digest(document.get("config", {})) != digest:
            raise ValueError(
                f"document config does not hash to {digest[:12]}…; refusing "
                f"to poison the cache"
            )
        path = self._path(digest)
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(canonical_json(document), encoding="utf-8")
        os.replace(tmp, path)
        return path

    def __contains__(self, digest: str) -> bool:
        return self._path(digest).exists()

    def __len__(self) -> int:
        return len(list(self.directory.glob("*.json")))

    def __repr__(self) -> str:
        return (
            f"<ResultCache {self.directory} entries={len(self)} "
            f"hits={self.hits} misses={self.misses}>"
        )
